// Bounded MPMC blocking queue.
//
// Used as the Pre-fetch Queue and Gradient Queue of the pipeline training
// system (paper §V). Bounded capacity is semantically important: the queue
// length is exactly the pipeline depth, and the embedding-cache life-cycle
// values are derived from it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"

namespace elrec {

/// Outcome of a deadline-aware queue operation.
enum class QueueOpStatus {
  kOk,       // item transferred
  kTimeout,  // deadline expired with the queue still full/empty
  kClosed,   // queue closed (push: always; pop: closed AND drained)
};

/// Thread-safe bounded FIFO. push() blocks when full, pop() blocks when
/// empty. close() wakes all waiters; pop() on a closed-and-drained queue
/// returns nullopt, push() on a closed queue returns false. The *_for
/// variants bound the wait so a wedged peer is diagnosed instead of
/// deadlocking the pipeline.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity) : capacity_(capacity) {
    ELREC_CHECK(capacity > 0, "queue capacity must be positive");
  }

  std::size_t capacity() const { return capacity_; }

  /// Blocks until there is room; returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available; returns nullopt once closed & empty.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Deadline-aware push: waits at most `timeout` for room. `value` is
  /// moved from only on kOk, so callers can retry the same object after a
  /// timeout (e.g. draining the other queue in between). Any duration type
  /// works — the serving scheduler passes microsecond budgets; a zero
  /// timeout makes this a non-blocking try_push (the shedding probe).
  template <typename Rep, typename Period>
  QueueOpStatus try_push_for(T& value,
                             std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    if (!not_full_.wait_for(lock, timeout, [this] {
          return closed_ || items_.size() < capacity_;
        })) {
      return QueueOpStatus::kTimeout;
    }
    if (closed_) return QueueOpStatus::kClosed;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return QueueOpStatus::kOk;
  }

  /// Deadline-aware pop: waits at most `timeout` for an item. kClosed is
  /// only reported once the queue is closed AND drained, so in-flight items
  /// are never dropped on shutdown. Accepts any duration granularity (the
  /// micro-batch coalescing window is sub-millisecond).
  template <typename Rep, typename Period>
  QueueOpStatus try_pop_for(T& out, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [this] { return closed_ || !items_.empty(); })) {
      return QueueOpStatus::kTimeout;
    }
    if (items_.empty()) return QueueOpStatus::kClosed;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return QueueOpStatus::kOk;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_ ELREC_GUARDED_BY(mu_);
  bool closed_ ELREC_GUARDED_BY(mu_) = false;
};

}  // namespace elrec
