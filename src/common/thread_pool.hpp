// Minimal fixed-size thread pool with a parallel_for helper.
//
// The compute kernels prefer OpenMP when available; the pool exists for the
// pipeline runtime (long-lived server/worker roles) and for environments
// where OpenMP is disabled.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace elrec {

class ThreadPool {
 public:
  /// n_threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues fn; the returned future observes its completion/exception.
  std::future<void> submit(std::function<void()> fn);

  /// Runs fn(i) for i in [begin, end) across the pool, blocking until done.
  /// Exceptions from any chunk are rethrown (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> tasks_ ELREC_GUARDED_BY(mu_);
  bool stop_ ELREC_GUARDED_BY(mu_) = false;
};

}  // namespace elrec
