#include "common/fault_injector.hpp"

#include <thread>

namespace elrec {

std::atomic<bool> FaultInjector::any_armed_{false};

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& site, FaultSpec spec) {
  std::lock_guard lock(mu_);
  SiteState& state = sites_[site];
  state.spec = std::move(spec);
  state.armed = true;
  state.hit_count = 0;
  state.fire_count = 0;
  // splitmix64 scramble so seed 0 still produces a usable stream.
  state.rng_state = state.spec.seed + 0x9e3779b97f4a7c15ULL;
  any_armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm(const std::string& site) {
  std::lock_guard lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.armed = false;
  bool any = false;
  for (const auto& [name, state] : sites_) any = any || state.armed;
  any_armed_.store(any, std::memory_order_relaxed);
}

void FaultInjector::reset() {
  {
    std::lock_guard lock(mu_);
    sites_.clear();
    ++cancel_epoch_;
    any_armed_.store(false, std::memory_order_relaxed);
  }
  delay_cv_.notify_all();
}

void FaultInjector::cancel_delays() {
  {
    std::lock_guard lock(mu_);
    ++cancel_epoch_;
  }
  delay_cv_.notify_all();
}

std::uint64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hit_count;
}

std::uint64_t FaultInjector::fires(const std::string& site) const {
  std::lock_guard lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fire_count;
}

namespace {

double next_uniform(std::uint64_t& state) {
  // splitmix64: independent of Prng so arming a site never perturbs the
  // training stream's randomness.
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

void FaultInjector::on_site(const char* site) {
  std::unique_lock lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return;
  SiteState& state = it->second;
  ++state.hit_count;
  if (!state.armed) return;
  const FaultSpec& spec = state.spec;
  if (state.hit_count <= spec.skip_first) return;
  if (state.fire_count >= spec.max_fires) return;
  if (spec.probability < 1.0 &&
      next_uniform(state.rng_state) >= spec.probability) {
    return;
  }
  ++state.fire_count;

  std::string what = std::string("injected fault at '") + site + "'";
  if (!spec.message.empty()) what += ": " + spec.message;

  switch (spec.kind) {
    case FaultKind::kError:
      throw InjectedFault(what);
    case FaultKind::kTransient:
      throw TransientError(what);
    case FaultKind::kDelay: {
      // Interruptible stall: reset()/cancel_delays() wakes us early so a
      // shutdown never has to out-wait an injected hang.
      const std::uint64_t epoch = cancel_epoch_;
      delay_cv_.wait_for(lock, spec.delay,
                         [&] { return cancel_epoch_ != epoch; });
      break;
    }
  }
}

}  // namespace elrec
