#include "common/fault_injector.hpp"

#include <cstdlib>
#include <thread>
#include <vector>

namespace elrec {

std::atomic<bool> FaultInjector::any_armed_{false};

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

namespace {

// Applies ELREC_FAULT_SITES before main() so env-armed sites fire in any
// binary, whether or not its code ever touches the injector explicitly. A
// malformed value must not abort static init — it is stashed for
// env_config_error() (tests assert on it; harnesses check it at start-up).
struct EnvConfigApplier {
  EnvConfigApplier() {
    try {
      FaultInjector::instance().arm_from_env();
    } catch (...) {
      // arm_from_env records the parse error itself; nothing else to do.
    }
  }
};
const EnvConfigApplier g_env_config_applier;

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t at = s.find(sep, start);
    if (at == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, at - start));
    start = at + 1;
  }
}

double parse_number(const std::string& text, const std::string& entry) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  ELREC_CHECK(used == text.size() && !text.empty(),
              "ELREC_FAULT_SITES: bad number '" + text + "' in '" + entry +
                  "'");
  return v;
}

}  // namespace

std::size_t FaultInjector::arm_from_string(const std::string& config) {
  std::size_t armed = 0;
  for (const std::string& entry : split(config, ',')) {
    if (entry.empty()) continue;
    const std::vector<std::string> fields = split(entry, ':');
    ELREC_CHECK(fields.size() >= 2 && fields.size() <= 4 &&
                    !fields[0].empty(),
                "ELREC_FAULT_SITES entry must be "
                "'site:prob[:kind[:param]]', got '" +
                    entry + "'");
    FaultSpec spec;
    spec.probability = parse_number(fields[1], entry);
    ELREC_CHECK(spec.probability >= 0.0 && spec.probability <= 1.0,
                "ELREC_FAULT_SITES: probability outside [0,1] in '" + entry +
                    "'");
    const std::string kind = fields.size() >= 3 ? fields[2] : "error";
    if (kind == "error") {
      spec.kind = FaultKind::kError;
    } else if (kind == "transient") {
      spec.kind = FaultKind::kTransient;
    } else if (kind == "delay") {
      spec.kind = FaultKind::kDelay;
    } else {
      ELREC_CHECK(false, "ELREC_FAULT_SITES: unknown kind '" + kind +
                             "' in '" + entry +
                             "' (want error|transient|delay)");
    }
    if (fields.size() == 4) {
      const double param = parse_number(fields[3], entry);
      ELREC_CHECK(param >= 0.0, "ELREC_FAULT_SITES: negative param in '" +
                                    entry + "'");
      if (spec.kind == FaultKind::kDelay) {
        spec.delay = std::chrono::milliseconds(static_cast<long long>(param));
      } else {
        spec.max_fires = static_cast<std::uint64_t>(param);
      }
    }
    spec.message = "armed via ELREC_FAULT_SITES";
    arm(fields[0], spec);
    ++armed;
  }
  return armed;
}

std::size_t FaultInjector::arm_from_env() {
  const char* value = std::getenv("ELREC_FAULT_SITES");
  if (value == nullptr || *value == '\0') return 0;
  try {
    return arm_from_string(value);
  } catch (const Error& e) {
    {
      std::lock_guard lock(mu_);
      env_error_ = e.what();
    }
    throw;
  }
}

std::string FaultInjector::env_config_error() const {
  std::lock_guard lock(mu_);
  return env_error_;
}

void FaultInjector::arm(const std::string& site, FaultSpec spec) {
  std::lock_guard lock(mu_);
  SiteState& state = sites_[site];
  state.spec = std::move(spec);
  state.armed = true;
  state.hit_count = 0;
  state.fire_count = 0;
  // splitmix64 scramble so seed 0 still produces a usable stream.
  state.rng_state = state.spec.seed + 0x9e3779b97f4a7c15ULL;
  any_armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm(const std::string& site) {
  std::lock_guard lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.armed = false;
  bool any = false;
  for (const auto& [name, state] : sites_) any = any || state.armed;
  any_armed_.store(any, std::memory_order_relaxed);
}

void FaultInjector::reset() {
  {
    std::lock_guard lock(mu_);
    sites_.clear();
    ++cancel_epoch_;
    any_armed_.store(false, std::memory_order_relaxed);
  }
  delay_cv_.notify_all();
}

void FaultInjector::cancel_delays() {
  {
    std::lock_guard lock(mu_);
    ++cancel_epoch_;
  }
  delay_cv_.notify_all();
}

std::uint64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hit_count;
}

std::uint64_t FaultInjector::fires(const std::string& site) const {
  std::lock_guard lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fire_count;
}

namespace {

double next_uniform(std::uint64_t& state) {
  // splitmix64: independent of Prng so arming a site never perturbs the
  // training stream's randomness.
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

void FaultInjector::on_site(const char* site) {
  std::unique_lock lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return;
  SiteState& state = it->second;
  ++state.hit_count;
  if (!state.armed) return;
  const FaultSpec& spec = state.spec;
  if (state.hit_count <= spec.skip_first) return;
  if (state.fire_count >= spec.max_fires) return;
  if (spec.probability < 1.0 &&
      next_uniform(state.rng_state) >= spec.probability) {
    return;
  }
  ++state.fire_count;

  std::string what = std::string("injected fault at '") + site + "'";
  if (!spec.message.empty()) what += ": " + spec.message;

  switch (spec.kind) {
    case FaultKind::kError:
      throw InjectedFault(what);
    case FaultKind::kTransient:
      throw TransientError(what);
    case FaultKind::kDelay: {
      // Interruptible stall: reset()/cancel_delays() wakes us early so a
      // shutdown never has to out-wait an injected hang.
      const std::uint64_t epoch = cancel_epoch_;
      delay_cv_.wait_for(lock, spec.delay,
                         [&] { return cancel_epoch_ != epoch; });
      break;
    }
  }
}

}  // namespace elrec
