// Error-handling primitives shared by every EL-Rec module.
//
// ELREC_CHECK is always on and throws elrec::Error; ELREC_DCHECK compiles out
// in release builds and is meant for hot loops (kernel inner bodies).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace elrec {

/// Exception type thrown by all ELREC_CHECK failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A failure the caller may retry (momentary host-store unavailability,
/// interrupted I/O, an injected transient fault). `with_retry` in
/// common/retry.hpp retries exactly this type; everything else is fatal.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void raise_check_failure(const char* cond, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "ELREC_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace elrec

/// Checked precondition; throws elrec::Error on failure. Usage:
///   ELREC_CHECK(rows > 0, "matrix must be non-empty");
#define ELREC_CHECK(cond, ...)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::elrec::detail::raise_check_failure(#cond, __FILE__, __LINE__,   \
                                           ::std::string{__VA_ARGS__}); \
    }                                                                   \
  } while (0)

#ifndef NDEBUG
#define ELREC_DCHECK(cond, ...) ELREC_CHECK(cond, ##__VA_ARGS__)
#else
#define ELREC_DCHECK(cond, ...) \
  do {                          \
  } while (0)
#endif
