// Baseline TT embedding table in the style of TT-Rec (paper baseline [20]).
//
// Forward: every index occurrence recomputes the full chain of TT-slice
// products — no intermediate-result reuse.
// Backward: per-OCCURRENCE TT-core gradients are computed first, accumulated
// into dense core-gradient buffers, and only then applied by a separate
// optimizer pass (i.e. post-hoc aggregation + unfused update). These are
// precisely the costs the Eff-TT table (src/core) removes.
#pragma once

#include "embed/embedding_table.hpp"
#include "tensor/optimizer.hpp"
#include "tt/tt_cores.hpp"

namespace elrec {

class TTTable final : public IEmbeddingTable {
 public:
  /// Randomly initialised table (training from scratch, the DLRM case).
  TTTable(index_t num_rows, TTShape shape, Prng& rng,
          float init_row_std = 0.01f);

  /// Wraps pre-decomposed cores (e.g. from tt_svd).
  TTTable(index_t num_rows, TTCores cores);

  index_t num_rows() const override { return num_rows_; }
  index_t dim() const override { return cores_.shape().dim(); }

  void forward(const IndexBatch& batch, Matrix& out) override;
  void backward_and_update(const IndexBatch& batch, const Matrix& grad_out,
                           float lr) override;

  std::size_t parameter_bytes() const override {
    return cores_.parameter_bytes();
  }
  std::string name() const override { return "TTTable(TT-Rec baseline)"; }

  TTCores& cores() { return cores_; }
  const TTCores& cores() const { return cores_; }

  /// Switches the TT-core update rule (default plain SGD). Momentum is not
  /// supported for embedding tables (see tensor/optimizer.hpp).
  void set_optimizer(OptimizerConfig config);

  void visit_parameters(const ParameterVisitor& visit) override {
    for (int k = 0; k < cores_.shape().num_cores(); ++k) {
      visit(cores_.core(k).data(),
            static_cast<std::size_t>(cores_.core(k).size()));
    }
  }

  /// Counters for the most recent backward pass (benchmarks report these).
  struct BackwardStats {
    std::size_t occurrence_gradients = 0;  // per-occurrence grad computations
    std::size_t gemm_calls = 0;
  };
  const BackwardStats& last_backward_stats() const { return backward_stats_; }

 private:
  // Computes the chained product for one row into `row_out` (length dim),
  // reusing the caller's scratch vectors.
  void compute_row(index_t row, std::vector<index_t>& parts,
                   std::vector<float>& scratch_a, std::vector<float>& scratch_b,
                   float* row_out) const;

  index_t num_rows_ = 0;
  TTCores cores_;
  // Dense per-core gradient buffers, reused across batches (TT-Rec style).
  std::vector<Matrix> core_grads_;
  std::vector<OptimizerState> core_optimizers_;
  BackwardStats backward_stats_;
};

}  // namespace elrec
