#include "tt/tt_cores.hpp"

#include <cmath>

#include "tensor/gemm.hpp"

namespace elrec {

TTCores::TTCores(TTShape shape) : shape_(std::move(shape)) {
  cores_.resize(static_cast<std::size_t>(shape_.num_cores()));
  for (int k = 0; k < shape_.num_cores(); ++k) {
    cores_[static_cast<std::size_t>(k)].resize(
        shape_.row_factor(k) * shape_.rank(k),
        shape_.col_factor(k) * shape_.rank(k + 1));
  }
}

void TTCores::init_normal(Prng& rng, float target_row_std) {
  // A reconstructed element is a sum of prod_k R_k products of d core
  // entries. With iid N(0, s) core entries its variance is
  // (prod internal ranks) * s^(2d), so
  //   s = (target^2 / prod R)^(1/(2d)).
  const int d = shape_.num_cores();
  double rank_prod = 1.0;
  for (int k = 1; k < d; ++k) rank_prod *= static_cast<double>(shape_.rank(k));
  const double s =
      std::pow(static_cast<double>(target_row_std) * target_row_std /
                   rank_prod,
               1.0 / (2.0 * d));
  for (auto& c : cores_) c.fill_normal(rng, 0.0f, static_cast<float>(s));
}

float* TTCores::slice(int k, index_t ik) {
  ELREC_DCHECK(ik >= 0 && ik < shape_.row_factor(k));
  return core(k).row(ik * shape_.rank(k));
}

const float* TTCores::slice(int k, index_t ik) const {
  ELREC_DCHECK(ik >= 0 && ik < shape_.row_factor(k));
  return core(k).row(ik * shape_.rank(k));
}

void TTCores::reconstruct_row(index_t row, std::span<float> out) const {
  const int d = shape_.num_cores();
  ELREC_CHECK(static_cast<index_t>(out.size()) == shape_.dim(),
              "output span must have dim() entries");
  std::vector<index_t> parts(static_cast<std::size_t>(d));
  shape_.factorize_row(row, parts);

  // prefix holds the running (P x R_k) product, P = n_1..n_{k-1}.
  std::vector<float> prefix;
  std::vector<float> next;
  const float* s0 = slice(0, parts[0]);
  prefix.assign(s0, s0 + slice_cols(0));  // (n_1 x R_1) row-major
  index_t p = shape_.col_factor(0);
  for (int k = 1; k < d; ++k) {
    const index_t rk = shape_.rank(k);
    const index_t cols = slice_cols(k);  // n_k * R_{k+1}
    next.assign(static_cast<std::size_t>(p) * cols, 0.0f);
    gemm(Trans::kNo, Trans::kNo, p, cols, rk, 1.0f, prefix.data(), rk,
         slice(k, parts[static_cast<std::size_t>(k)]), cols, 0.0f, next.data(),
         cols);
    prefix.swap(next);
    p *= shape_.col_factor(k);
  }
  // Final prefix is (N x 1).
  ELREC_DCHECK(p == shape_.dim());
  std::copy(prefix.begin(), prefix.end(), out.begin());
}

Matrix TTCores::materialize(index_t num_rows) const {
  ELREC_CHECK(num_rows <= shape_.padded_rows(),
              "cannot materialize more rows than the padded vocabulary");
  Matrix out(num_rows, shape_.dim());
  for (index_t r = 0; r < num_rows; ++r) {
    reconstruct_row(r, {out.row(r), static_cast<std::size_t>(out.cols())});
  }
  return out;
}

}  // namespace elrec
