// Tensor-train shape bookkeeping for embedding tables (paper §II-B, Eq. 3).
//
// An M x N embedding table is reshaped into a d-dimensional tensor with mode
// sizes (m_k * n_k), where M <= prod m_k and N == prod n_k, then represented
// by d TT cores with ranks R_0..R_d (R_0 = R_d = 1). TTShape owns the
// factorizations and the mixed-radix index arithmetic.
#pragma once

#include <span>

#include <vector>

#include "tensor/matrix.hpp"

namespace elrec {

class TTShape {
 public:
  /// row_factors / col_factors are (m_1..m_d) and (n_1..n_d); ranks is the
  /// full vector (R_0..R_d) and must have R_0 = R_d = 1.
  TTShape(std::vector<index_t> row_factors, std::vector<index_t> col_factors,
          std::vector<index_t> ranks);

  /// Convenience: factorize `num_rows` into `d` near-balanced factors (their
  /// product may exceed num_rows — padding rows are simply never addressed),
  /// factorize `dim` exactly into d factors (dim must allow it), and use a
  /// uniform internal rank.
  static TTShape balanced(index_t num_rows, index_t dim, int d, index_t rank);

  int num_cores() const { return static_cast<int>(row_factors_.size()); }
  index_t row_factor(int k) const {
    return row_factors_[static_cast<std::size_t>(k)];
  }
  index_t col_factor(int k) const {
    return col_factors_[static_cast<std::size_t>(k)];
  }
  /// R_k for k in [0, d]; rank(0) == rank(d) == 1.
  index_t rank(int k) const { return ranks_[static_cast<std::size_t>(k)]; }

  const std::vector<index_t>& row_factors() const { return row_factors_; }
  const std::vector<index_t>& col_factors() const { return col_factors_; }
  const std::vector<index_t>& ranks() const { return ranks_; }

  /// prod m_k — the padded vocabulary size.
  index_t padded_rows() const { return padded_rows_; }
  /// prod n_k — the embedding dimension.
  index_t dim() const { return dim_; }

  /// Eq. 3: decomposes a flat row index into per-core indices (big-endian
  /// mixed radix over the m_k).
  void factorize_row(index_t row, std::span<index_t> out) const;

  /// Inverse of factorize_row.
  index_t combine_row(std::span<const index_t> parts) const;

  /// Number of float parameters of all cores: sum_k m_k * R_k * n_k * R_{k+1}.
  std::size_t parameter_count() const;

  /// Compression ratio versus a dense num_rows x dim table.
  double compression_ratio(index_t num_rows) const;

  /// Convenience: factorize `v` into `d` integer factors, each as close to
  /// v^(1/d) as possible, whose product is >= v (ceil covering). Exposed for
  /// dataset/bench code.
  static std::vector<index_t> cover_factorize(index_t v, int d);

  /// Exact factorization of v into d factors (throws if impossible). Used for
  /// the embedding dimension, which must not be padded.
  static std::vector<index_t> exact_factorize(index_t v, int d);

 private:
  std::vector<index_t> row_factors_;
  std::vector<index_t> col_factors_;
  std::vector<index_t> ranks_;
  index_t padded_rows_ = 0;
  index_t dim_ = 0;
};

}  // namespace elrec
