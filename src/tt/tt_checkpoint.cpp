#include "tt/tt_checkpoint.hpp"

#include "common/serialize.hpp"

namespace elrec {

namespace {
constexpr char kTag[4] = {'E', 'T', 'T', '1'};
}

void save_tt_cores(const TTCores& cores, const std::string& path) {
  // Staged write + checksum footer + atomic rename: a crash mid-save can
  // never corrupt an existing checkpoint at `path`.
  write_checkpoint_atomic(path, [&](BinaryWriter& w) {
    w.write_tag(kTag);
    const TTShape& shape = cores.shape();
    w.write_vector(shape.row_factors());
    w.write_vector(shape.col_factors());
    w.write_vector(shape.ranks());
    for (int k = 0; k < shape.num_cores(); ++k) {
      w.write_array(cores.core(k).data(),
                    static_cast<std::size_t>(cores.core(k).size()));
    }
  });
}

TTCores load_tt_cores(const std::string& path) {
  BinaryReader r(path);
  r.expect_tag(kTag);
  auto rows = r.read_vector<index_t>();
  auto cols = r.read_vector<index_t>();
  auto ranks = r.read_vector<index_t>();
  TTShape shape(std::move(rows), std::move(cols), std::move(ranks));
  TTCores cores(shape);
  for (int k = 0; k < shape.num_cores(); ++k) {
    const auto values = r.read_vector<float>();
    ELREC_CHECK(static_cast<index_t>(values.size()) == cores.core(k).size(),
                "core size mismatch in checkpoint");
    std::copy(values.begin(), values.end(), cores.core(k).data());
  }
  r.expect_footer();
  return cores;
}

}  // namespace elrec
