#include "tt/tt_svd.hpp"

#include <cmath>
#include <numeric>

#include "tensor/svd.hpp"

namespace elrec {

TTCores tt_svd(const Matrix& table, const std::vector<index_t>& row_factors,
               const std::vector<index_t>& col_factors, index_t max_rank,
               double cutoff) {
  const int d = static_cast<int>(row_factors.size());
  ELREC_CHECK(d >= 2 && col_factors.size() == row_factors.size(),
              "need matching row/col factorizations with d >= 2");
  index_t padded_rows = 1, dim = 1;
  std::vector<index_t> mode(static_cast<std::size_t>(d));
  for (int k = 0; k < d; ++k) {
    padded_rows *= row_factors[static_cast<std::size_t>(k)];
    dim *= col_factors[static_cast<std::size_t>(k)];
    mode[static_cast<std::size_t>(k)] = row_factors[static_cast<std::size_t>(k)] *
                                        col_factors[static_cast<std::size_t>(k)];
  }
  ELREC_CHECK(padded_rows >= table.rows(),
              "row factorization does not cover the table");
  ELREC_CHECK(dim == table.cols(), "col factorization must multiply to dim");

  // Scatter the (zero-padded) table into tensor order: flat index is
  // big-endian over modes D_k with per-mode index t_k = i_k * n_k + j_k.
  std::size_t tensor_size = 1;
  for (int k = 0; k < d; ++k) {
    tensor_size *= static_cast<std::size_t>(mode[static_cast<std::size_t>(k)]);
  }
  std::vector<float> tensor(tensor_size, 0.0f);
  std::vector<index_t> iparts(static_cast<std::size_t>(d));
  std::vector<index_t> jparts(static_cast<std::size_t>(d));
  TTShape row_shape(row_factors, col_factors,
                    [&] {
                      std::vector<index_t> ones(static_cast<std::size_t>(d) + 1,
                                                1);
                      return ones;
                    }());
  for (index_t i = 0; i < table.rows(); ++i) {
    row_shape.factorize_row(i, iparts);
    for (index_t j = 0; j < table.cols(); ++j) {
      index_t jj = j;
      for (int k = d - 1; k >= 0; --k) {
        const index_t n = col_factors[static_cast<std::size_t>(k)];
        jparts[static_cast<std::size_t>(k)] = jj % n;
        jj /= n;
      }
      std::size_t flat = 0;
      for (int k = 0; k < d; ++k) {
        const index_t t = iparts[static_cast<std::size_t>(k)] *
                              col_factors[static_cast<std::size_t>(k)] +
                          jparts[static_cast<std::size_t>(k)];
        flat = flat * static_cast<std::size_t>(
                          mode[static_cast<std::size_t>(k)]) +
               static_cast<std::size_t>(t);
      }
      tensor[flat] = table.at(i, j);
    }
  }

  // Sequential truncated SVDs over the unfoldings.
  std::vector<index_t> ranks(static_cast<std::size_t>(d) + 1, 1);
  std::vector<Matrix> raw_cores(static_cast<std::size_t>(d));

  // Current carry matrix C, shape (R_k * D_k) x tail, stored row-major in
  // `carry` (initially the whole tensor as D_0 x rest).
  std::vector<float> carry = std::move(tensor);
  index_t carry_rows = mode[0];
  index_t carry_cols = static_cast<index_t>(tensor_size) / mode[0];

  for (int k = 0; k < d - 1; ++k) {
    Matrix c(carry_rows, carry_cols);
    std::copy(carry.begin(), carry.end(), c.data());
    SvdResult f = svd_truncated(c, max_rank, cutoff);
    const index_t r_next = static_cast<index_t>(f.sigma.size());
    ranks[static_cast<std::size_t>(k) + 1] = r_next;

    // Core k <- U, reshaped (R_k * D_k) x R_{k+1}.
    raw_cores[static_cast<std::size_t>(k)] = std::move(f.u);

    // Carry <- diag(S) * Vt, then fold D_{k+1} out of the columns.
    Matrix sv(r_next, f.vt.cols());
    for (index_t r = 0; r < r_next; ++r) {
      const float s = f.sigma[static_cast<std::size_t>(r)];
      for (index_t jcol = 0; jcol < f.vt.cols(); ++jcol) {
        sv.at(r, jcol) = s * f.vt.at(r, jcol);
      }
    }
    carry.assign(sv.data(), sv.data() + sv.size());
    carry_rows = r_next * mode[static_cast<std::size_t>(k) + 1];
    carry_cols = sv.size() / carry_rows;
  }
  // Last core is the remaining carry: (R_{d-1} * D_{d-1}) x 1.
  {
    Matrix last(carry_rows, carry_cols);
    ELREC_CHECK(carry_cols == 1, "final TT-SVD carry must be a column");
    std::copy(carry.begin(), carry.end(), last.data());
    raw_cores[static_cast<std::size_t>(d - 1)] = std::move(last);
  }

  // Repack raw cores (row index r_k * D_k + t_k, col r_{k+1}) into TTCores'
  // slice layout (slice i_k, row r_k, col j_k * R_{k+1} + r_{k+1}).
  TTShape shape(row_factors, col_factors, ranks);
  TTCores cores(shape);
  for (int k = 0; k < d; ++k) {
    const Matrix& raw = raw_cores[static_cast<std::size_t>(k)];
    const index_t rk = shape.rank(k);
    const index_t rk1 = shape.rank(k + 1);
    const index_t nk = shape.col_factor(k);
    for (index_t ik = 0; ik < shape.row_factor(k); ++ik) {
      float* dst = cores.slice(k, ik);
      for (index_t r = 0; r < rk; ++r) {
        for (index_t jk = 0; jk < nk; ++jk) {
          const index_t t = ik * nk + jk;
          for (index_t r2 = 0; r2 < rk1; ++r2) {
            dst[r * (nk * rk1) + jk * rk1 + r2] = raw.at(r * mode[static_cast<std::size_t>(k)] + t, r2);
          }
        }
      }
    }
  }
  return cores;
}

double tt_reconstruction_error(const TTCores& cores, const Matrix& table) {
  Matrix rec = cores.materialize(table.rows());
  double num = 0.0, den = 0.0;
  for (index_t i = 0; i < table.size(); ++i) {
    const double diff = static_cast<double>(rec.data()[i]) - table.data()[i];
    num += diff * diff;
    den += static_cast<double>(table.data()[i]) * table.data()[i];
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

}  // namespace elrec
