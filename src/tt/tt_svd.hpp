// TT-SVD: decompose an existing dense embedding table into TT cores
// (Oseledets' algorithm specialised to the (m_k x n_k) embedding reshape of
// Eq. 2). Used to convert pretrained tables and to unit-test reconstruction:
// with full ranks the round trip is exact up to float error.
#pragma once

#include "tt/tt_cores.hpp"

namespace elrec {

/// Decomposes `table` (num_rows x dim) using the given row/col factorization,
/// truncating every internal rank to at most `max_rank` (and dropping
/// singular values below `cutoff` * sigma_max when cutoff > 0).
/// prod(row_factors) must be >= num_rows; prod(col_factors) == dim.
TTCores tt_svd(const Matrix& table, const std::vector<index_t>& row_factors,
               const std::vector<index_t>& col_factors, index_t max_rank,
               double cutoff = 0.0);

/// Frobenius-norm relative reconstruction error of `cores` against `table`.
double tt_reconstruction_error(const TTCores& cores, const Matrix& table);

}  // namespace elrec
