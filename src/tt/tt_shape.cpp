#include "tt/tt_shape.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace elrec {

TTShape::TTShape(std::vector<index_t> row_factors,
                 std::vector<index_t> col_factors, std::vector<index_t> ranks)
    : row_factors_(std::move(row_factors)),
      col_factors_(std::move(col_factors)),
      ranks_(std::move(ranks)) {
  const auto d = row_factors_.size();
  ELREC_CHECK(d >= 2, "TT decomposition needs at least two cores");
  ELREC_CHECK(col_factors_.size() == d, "row/col factor count mismatch");
  ELREC_CHECK(ranks_.size() == d + 1, "ranks must have d+1 entries");
  ELREC_CHECK(ranks_.front() == 1 && ranks_.back() == 1,
              "boundary TT ranks must be 1");
  padded_rows_ = 1;
  dim_ = 1;
  for (std::size_t k = 0; k < d; ++k) {
    ELREC_CHECK(row_factors_[k] > 0 && col_factors_[k] > 0 && ranks_[k] > 0,
                "TT factors and ranks must be positive");
    padded_rows_ *= row_factors_[k];
    dim_ *= col_factors_[k];
  }
}

TTShape TTShape::balanced(index_t num_rows, index_t dim, int d, index_t rank) {
  auto rows = cover_factorize(num_rows, d);
  auto cols = exact_factorize(dim, d);
  std::vector<index_t> ranks(static_cast<std::size_t>(d) + 1, rank);
  ranks.front() = 1;
  ranks.back() = 1;
  return TTShape(std::move(rows), std::move(cols), std::move(ranks));
}

void TTShape::factorize_row(index_t row, std::span<index_t> out) const {
  ELREC_DCHECK(row >= 0 && row < padded_rows_);
  ELREC_DCHECK(out.size() == row_factors_.size());
  // Big-endian mixed radix: the last factor varies fastest (Eq. 3).
  for (int k = num_cores() - 1; k >= 0; --k) {
    const index_t m = row_factor(k);
    out[static_cast<std::size_t>(k)] = row % m;
    row /= m;
  }
}

index_t TTShape::combine_row(std::span<const index_t> parts) const {
  ELREC_DCHECK(parts.size() == row_factors_.size());
  index_t row = 0;
  for (int k = 0; k < num_cores(); ++k) {
    ELREC_DCHECK(parts[static_cast<std::size_t>(k)] < row_factor(k));
    row = row * row_factor(k) + parts[static_cast<std::size_t>(k)];
  }
  return row;
}

std::size_t TTShape::parameter_count() const {
  std::size_t total = 0;
  for (int k = 0; k < num_cores(); ++k) {
    total += static_cast<std::size_t>(row_factor(k)) *
             static_cast<std::size_t>(rank(k)) *
             static_cast<std::size_t>(col_factor(k)) *
             static_cast<std::size_t>(rank(k + 1));
  }
  return total;
}

double TTShape::compression_ratio(index_t num_rows) const {
  const double dense = static_cast<double>(num_rows) * dim();
  return dense / static_cast<double>(parameter_count());
}

std::vector<index_t> TTShape::cover_factorize(index_t v, int d) {
  ELREC_CHECK(v > 0 && d >= 2, "bad cover_factorize arguments");
  std::vector<index_t> factors(static_cast<std::size_t>(d));
  index_t remaining = v;
  for (int k = 0; k < d; ++k) {
    const int left = d - k;
    const auto f = static_cast<index_t>(std::ceil(
        std::pow(static_cast<double>(remaining), 1.0 / left) - 1e-9));
    factors[static_cast<std::size_t>(k)] = std::max<index_t>(1, f);
    // ceil-divide so the remaining factors still cover the residue.
    remaining = (remaining + factors[static_cast<std::size_t>(k)] - 1) /
                factors[static_cast<std::size_t>(k)];
  }
  return factors;
}

std::vector<index_t> TTShape::exact_factorize(index_t v, int d) {
  ELREC_CHECK(v > 0 && d >= 2, "bad exact_factorize arguments");
  // Greedy: peel the divisor closest to the ideal balanced factor.
  std::vector<index_t> factors(static_cast<std::size_t>(d), 1);
  index_t remaining = v;
  for (int k = 0; k < d - 1; ++k) {
    const int left = d - k;
    const double ideal = std::pow(static_cast<double>(remaining), 1.0 / left);
    index_t best = 1;
    double best_dist = std::abs(1.0 - ideal);
    for (index_t f = 1; f <= remaining; ++f) {
      if (remaining % f != 0) continue;
      const double dist = std::abs(static_cast<double>(f) - ideal);
      if (dist < best_dist) {
        best = f;
        best_dist = dist;
      }
      if (f > static_cast<index_t>(ideal) * 2 && best > 1) break;
    }
    factors[static_cast<std::size_t>(k)] = best;
    remaining /= best;
  }
  factors[static_cast<std::size_t>(d - 1)] = remaining;
  return factors;
}

}  // namespace elrec
