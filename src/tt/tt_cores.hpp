// TT-core storage.
//
// Core k holds m_k slices; the slice for row-part index i_k is an
// R_k x (n_k * R_{k+1}) matrix. Slices are stored stacked in one Matrix per
// core ((m_k * R_k) rows), so slice pointers are simple row offsets — the
// layout the batched-GEMM pointer lists of Algorithm 1 address directly.
//
// Chained-product shape invariant: multiplying the running prefix
// (P x R_k, P = n_1..n_{k-1}) by slice k and reinterpreting the result
// row-major yields (P * n_k) x R_{k+1}; after the last core this is the
// (N x 1) embedding row.
#pragma once

#include <span>

#include "tt/tt_shape.hpp"

namespace elrec {

class TTCores {
 public:
  explicit TTCores(TTShape shape);

  const TTShape& shape() const { return shape_; }

  /// Gaussian init with per-core stddev chosen so that a reconstructed
  /// embedding row has approximately stddev `target_row_std` (the product of
  /// d cores multiplies d sigmas and sums over prod R_k terms).
  void init_normal(Prng& rng, float target_row_std = 0.01f);

  Matrix& core(int k) { return cores_[static_cast<std::size_t>(k)]; }
  const Matrix& core(int k) const {
    return cores_[static_cast<std::size_t>(k)];
  }

  /// Pointer to the slice of core k selected by row-part index i_k.
  float* slice(int k, index_t ik);
  const float* slice(int k, index_t ik) const;

  /// Rows of one slice of core k (== R_k).
  index_t slice_rows(int k) const { return shape_.rank(k); }
  /// Cols of one slice of core k (== n_k * R_{k+1}).
  index_t slice_cols(int k) const {
    return shape_.col_factor(k) * shape_.rank(k + 1);
  }

  /// Computes one embedding row into out[0..dim) by chained slice products.
  void reconstruct_row(index_t row, std::span<float> out) const;

  /// Materializes the full (num_rows x dim) table; num_rows <= padded_rows.
  Matrix materialize(index_t num_rows) const;

  std::size_t parameter_bytes() const {
    return shape_.parameter_count() * sizeof(float);
  }

 private:
  TTShape shape_;
  std::vector<Matrix> cores_;
};

}  // namespace elrec
