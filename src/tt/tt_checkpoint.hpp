// Checkpointing for TT cores and TT shapes.
#pragma once

#include <string>

#include "tt/tt_cores.hpp"

namespace elrec {

/// Writes shape + all core parameters.
void save_tt_cores(const TTCores& cores, const std::string& path);

/// Reads a checkpoint written by save_tt_cores.
TTCores load_tt_cores(const std::string& path);

}  // namespace elrec
