#include "tt/tt_table.hpp"

#include "tensor/gemm.hpp"

namespace elrec {

TTTable::TTTable(index_t num_rows, TTShape shape, Prng& rng,
                 float init_row_std)
    : num_rows_(num_rows), cores_(std::move(shape)) {
  ELREC_CHECK(num_rows > 0, "table must be non-empty");
  ELREC_CHECK(cores_.shape().padded_rows() >= num_rows,
              "row factorization does not cover num_rows");
  cores_.init_normal(rng, init_row_std);
}

TTTable::TTTable(index_t num_rows, TTCores cores)
    : num_rows_(num_rows), cores_(std::move(cores)) {
  ELREC_CHECK(cores_.shape().padded_rows() >= num_rows,
              "row factorization does not cover num_rows");
}

void TTTable::compute_row(index_t row, std::vector<index_t>& parts,
                          std::vector<float>& scratch_a,
                          std::vector<float>& scratch_b, float* row_out) const {
  const TTShape& shape = cores_.shape();
  const int d = shape.num_cores();
  shape.factorize_row(row, parts);

  const float* s0 = cores_.slice(0, parts[0]);
  scratch_a.assign(s0, s0 + cores_.slice_cols(0));
  index_t p = shape.col_factor(0);
  for (int k = 1; k < d; ++k) {
    const index_t rk = shape.rank(k);
    const index_t cols = cores_.slice_cols(k);
    scratch_b.assign(static_cast<std::size_t>(p) * cols, 0.0f);
    gemm(Trans::kNo, Trans::kNo, p, cols, rk, 1.0f, scratch_a.data(), rk,
         cores_.slice(k, parts[static_cast<std::size_t>(k)]), cols, 0.0f,
         scratch_b.data(), cols);
    scratch_a.swap(scratch_b);
    p *= shape.col_factor(k);
  }
  std::copy(scratch_a.begin(), scratch_a.end(), row_out);
}

void TTTable::forward(const IndexBatch& batch, Matrix& out) {
  batch.validate(num_rows_);
  const index_t b = batch.batch_size();
  const index_t n = dim();
  out.resize(b, n);

#pragma omp parallel if (b >= 256)
  {
    std::vector<index_t> parts(static_cast<std::size_t>(
        cores_.shape().num_cores()));
    std::vector<float> sa, sb;
    std::vector<float> row(static_cast<std::size_t>(n));
#pragma omp for schedule(static)
    for (index_t s = 0; s < b; ++s) {
      float* dst = out.row(s);
      for (index_t ppos = batch.bag_begin(s); ppos < batch.bag_end(s); ++ppos) {
        // TT-Rec baseline: full recompute per occurrence, no reuse.
        compute_row(batch.indices[static_cast<std::size_t>(ppos)], parts, sa,
                    sb, row.data());
        for (index_t j = 0; j < n; ++j) dst[j] += row[j];
      }
    }
  }
}

void TTTable::backward_and_update(const IndexBatch& batch,
                                  const Matrix& grad_out, float lr) {
  ELREC_CHECK(grad_out.rows() == batch.batch_size() && grad_out.cols() == dim(),
              "grad_out shape mismatch");
  const TTShape& shape = cores_.shape();
  const int d = shape.num_cores();
  backward_stats_ = BackwardStats{};

  // Dense gradient buffers shaped like the cores (allocated once).
  if (core_grads_.empty()) {
    core_grads_.resize(static_cast<std::size_t>(d));
    for (int k = 0; k < d; ++k) {
      core_grads_[static_cast<std::size_t>(k)].resize(cores_.core(k).rows(),
                                                      cores_.core(k).cols());
    }
  }
  for (auto& g : core_grads_) g.set_zero();

  std::vector<index_t> parts(static_cast<std::size_t>(d));
  std::vector<std::vector<float>> prefixes(static_cast<std::size_t>(d));
  std::vector<float> d_prefix, d_prev;

  // Step 1 (Fig. 6a): per-OCCURRENCE gradient of every core, accumulated
  // into the dense buffers. No in-advance aggregation: a row repeated t
  // times in the batch costs t full chain-rule evaluations.
  for (index_t s = 0; s < batch.batch_size(); ++s) {
    const float* g = grad_out.row(s);
    for (index_t pos = batch.bag_begin(s); pos < batch.bag_end(s); ++pos) {
      const index_t row = batch.indices[static_cast<std::size_t>(pos)];
      shape.factorize_row(row, parts);
      backward_stats_.occurrence_gradients += 1;

      // Forward prefixes A_k (P_k x R_{k+1}), A_0 = first slice.
      const float* s0 = cores_.slice(0, parts[0]);
      prefixes[0].assign(s0, s0 + cores_.slice_cols(0));
      index_t p = shape.col_factor(0);
      for (int k = 1; k < d; ++k) {
        const index_t rk = shape.rank(k);
        const index_t cols = cores_.slice_cols(k);
        auto& out_buf = prefixes[static_cast<std::size_t>(k)];
        out_buf.assign(static_cast<std::size_t>(p) * cols, 0.0f);
        gemm(Trans::kNo, Trans::kNo, p, cols, rk, 1.0f,
             prefixes[static_cast<std::size_t>(k - 1)].data(), rk,
             cores_.slice(k, parts[static_cast<std::size_t>(k)]), cols, 0.0f,
             out_buf.data(), cols);
        backward_stats_.gemm_calls += 1;
        p *= shape.col_factor(k);
      }

      // Backward sweep: dA_d = g (N x 1); for k = d-1..0,
      //   view dA_{k+1} as (P_k x n_{k+1} R_{k+2}),
      //   dC_{k+1} += A_k^T * view,  dA_k = view * C_{k+1}^T.
      d_prefix.assign(g, g + dim());
      index_t pk = shape.dim();
      for (int k = d - 1; k >= 1; --k) {
        const index_t cols = cores_.slice_cols(k);  // n_k * R_{k+1}
        const index_t rk = shape.rank(k);
        pk /= shape.col_factor(k);  // P_{k-1}
        // dC_k[i_k] += A_{k-1}^T (rk x pk) * dA_k-view (pk x cols)
        float* gslice =
            core_grads_[static_cast<std::size_t>(k)].row(
                parts[static_cast<std::size_t>(k)] * rk);
        gemm(Trans::kYes, Trans::kNo, rk, cols, pk, 1.0f,
             prefixes[static_cast<std::size_t>(k - 1)].data(), rk,
             d_prefix.data(), cols, 1.0f, gslice, cols);
        backward_stats_.gemm_calls += 1;
        // dA_{k-1} = dA_k-view (pk x cols) * slice^T (cols x rk)
        d_prev.assign(static_cast<std::size_t>(pk) * rk, 0.0f);
        gemm(Trans::kNo, Trans::kYes, pk, rk, cols, 1.0f, d_prefix.data(),
             cols, cores_.slice(k, parts[static_cast<std::size_t>(k)]), cols,
             0.0f, d_prev.data(), rk);
        backward_stats_.gemm_calls += 1;
        d_prefix.swap(d_prev);
      }
      // Core 0 gradient is dA_0 itself (slice is 1 x n_0 R_1 == flat dA_0).
      float* g0 = core_grads_[0].row(parts[0] * shape.rank(0));
      for (index_t j = 0; j < cores_.slice_cols(0); ++j) g0[j] += d_prefix[static_cast<std::size_t>(j)];
    }
  }

  // Step 2/3: separate (unfused) optimizer pass over the whole cores.
  if (core_optimizers_.empty()) set_optimizer(OptimizerConfig{});
  for (int k = 0; k < d; ++k) {
    core_optimizers_[static_cast<std::size_t>(k)].update(
        {cores_.core(k).data(), static_cast<std::size_t>(cores_.core(k).size())},
        {core_grads_[static_cast<std::size_t>(k)].data(),
         static_cast<std::size_t>(core_grads_[static_cast<std::size_t>(k)].size())},
        lr);
  }
}

void TTTable::set_optimizer(OptimizerConfig config) {
  ELREC_CHECK(config.kind != OptimizerKind::kMomentum,
              "momentum is not inactive-safe for sparse embedding updates");
  const int d = cores_.shape().num_cores();
  core_optimizers_.resize(static_cast<std::size_t>(d));
  for (int k = 0; k < d; ++k) {
    core_optimizers_[static_cast<std::size_t>(k)].reset(
        config, static_cast<std::size_t>(cores_.core(k).size()));
  }
}

}  // namespace elrec
