// Singular value decomposition via one-sided Jacobi rotations.
//
// TT-SVD (tt/tt_svd.*) repeatedly factorizes unfolding matrices; this solver
// provides the economy SVD it needs. Computation is done in double for
// stability and returned as float matrices.
#pragma once

#include "tensor/matrix.hpp"

namespace elrec {

struct SvdResult {
  Matrix u;                    // m x r
  std::vector<float> sigma;    // r singular values, descending
  Matrix vt;                   // r x n
};

/// Economy SVD of a (m x n): a = u * diag(sigma) * vt with r = min(m, n).
/// One-sided Jacobi on the narrower side; max_sweeps bounds the iteration.
SvdResult svd(const Matrix& a, int max_sweeps = 60, double tol = 1e-12);

/// Truncated SVD keeping at most `rank` singular values (and dropping any
/// below `cutoff` relative to sigma[0]).
SvdResult svd_truncated(const Matrix& a, index_t rank, double cutoff = 0.0);

}  // namespace elrec
