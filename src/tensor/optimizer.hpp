// Optimizers shared by the MLP layers and the embedding tables.
//
// SGD is the paper's setting; momentum and Adagrad are the standard DLRM
// extensions. OptimizerState keeps per-parameter auxiliary buffers and
// supports region updates so the Eff-TT fused backward can update only the
// touched TT-core slices.
//
// Note on sparsity: SGD and Adagrad are "inactive-safe" — parameters with a
// zero gradient do not move — so touched-slice updates equal a dense pass.
// Momentum is NOT (velocity keeps coasting); it is therefore intended for
// the dense MLP layers only.
#pragma once

#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace elrec {

enum class OptimizerKind {
  kSgd,
  kMomentum,
  kAdagrad,
};

struct OptimizerConfig {
  OptimizerKind kind = OptimizerKind::kSgd;
  float momentum = 0.9f;  // kMomentum
  float eps = 1e-8f;      // kAdagrad
};

/// Auxiliary state for one parameter buffer of fixed size.
class OptimizerState {
 public:
  OptimizerState() = default;
  OptimizerState(OptimizerConfig config, std::size_t num_params)
      : config_(config), num_params_(num_params) {}

  void reset(OptimizerConfig config, std::size_t num_params) {
    config_ = config;
    num_params_ = num_params;
    aux_.clear();
  }

  const OptimizerConfig& config() const { return config_; }

  /// Allocates the auxiliary buffer up front (it is otherwise created
  /// lazily on the first update). Call before issuing update_region() from
  /// multiple threads: concurrent region updates on disjoint regions are
  /// safe only once aux storage exists.
  void prepare() { ensure_aux(); }

  /// w[offset .. offset+n) -= step(g) for the configured rule.
  void update_region(float* w, const float* g, std::size_t offset,
                     std::size_t n, float lr);

  /// Whole-buffer update.
  void update(std::span<float> w, std::span<const float> g, float lr) {
    ELREC_DCHECK(w.size() == num_params_ && g.size() == w.size());
    update_region(w.data(), g.data(), 0, w.size(), lr);
  }

 private:
  void ensure_aux();

  OptimizerConfig config_;
  std::size_t num_params_ = 0;
  std::vector<float> aux_;  // velocity (momentum) or grad-square sum (adagrad)
};

}  // namespace elrec
