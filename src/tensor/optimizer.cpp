#include "tensor/optimizer.hpp"

#include <cmath>

namespace elrec {

void OptimizerState::ensure_aux() {
  if (aux_.empty() && config_.kind != OptimizerKind::kSgd) {
    aux_.assign(num_params_, 0.0f);
  }
}

void OptimizerState::update_region(float* w, const float* g,
                                   std::size_t offset, std::size_t n,
                                   float lr) {
  ELREC_DCHECK(offset + n <= num_params_);
  switch (config_.kind) {
    case OptimizerKind::kSgd:
#pragma omp simd
      for (std::size_t i = 0; i < n; ++i) w[i] -= lr * g[i];
      return;
    case OptimizerKind::kMomentum: {
      ensure_aux();
      float* v = aux_.data() + offset;
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = config_.momentum * v[i] + g[i];
        w[i] -= lr * v[i];
      }
      return;
    }
    case OptimizerKind::kAdagrad: {
      ensure_aux();
      float* s = aux_.data() + offset;
#pragma omp simd
      for (std::size_t i = 0; i < n; ++i) {
        s[i] += g[i] * g[i];
        w[i] -= lr * g[i] / (std::sqrt(s[i]) + config_.eps);
      }
      return;
    }
  }
}

}  // namespace elrec
