// Dense row-major float32 matrix, the storage type of every EL-Rec kernel.
//
// Embedding tables, TT-core slices, MLP weights and activations are all
// Matrix; GEMM kernels operate on raw pointers + leading dimensions so views
// into larger buffers work without copies.
#pragma once

#include <cstddef>
#include <initializer_list>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"

namespace elrec {

using index_t = std::int64_t;

/// Owning dense row-major matrix of float.
class Matrix {
 public:
  Matrix() = default;

  Matrix(index_t rows, index_t cols) { resize(rows, cols); }

  /// Builds a matrix from nested initializer lists (row by row); handy in
  /// tests. All rows must have the same length.
  Matrix(std::initializer_list<std::initializer_list<float>> rows);

  /// Reallocates to rows x cols, zero-filled. Contents are not preserved.
  void resize(index_t rows, index_t cols);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return buf_.data(); }
  const float* data() const { return buf_.data(); }

  float* row(index_t i) {
    ELREC_DCHECK(i >= 0 && i < rows_);
    return buf_.data() + static_cast<std::size_t>(i) * cols_;
  }
  const float* row(index_t i) const {
    ELREC_DCHECK(i >= 0 && i < rows_);
    return buf_.data() + static_cast<std::size_t>(i) * cols_;
  }

  float& at(index_t i, index_t j) {
    ELREC_DCHECK(j >= 0 && j < cols_);
    return row(i)[j];
  }
  float at(index_t i, index_t j) const {
    ELREC_DCHECK(j >= 0 && j < cols_);
    return row(i)[j];
  }

  float& operator()(index_t i, index_t j) { return at(i, j); }
  float operator()(index_t i, index_t j) const { return at(i, j); }

  void fill(float value) { buf_.fill(value); }
  void set_zero() { buf_.fill(0.0f); }

  /// Fills with N(mean, stddev) draws.
  void fill_normal(Prng& rng, float mean = 0.0f, float stddev = 1.0f);

  /// Fills with U[lo, hi) draws.
  void fill_uniform(Prng& rng, float lo, float hi);

  /// Xavier/Glorot uniform init for a (fan_in=rows, fan_out=cols) layer.
  void fill_xavier(Prng& rng);

  /// Max |a_ij - b_ij| over both matrices; they must have equal shape.
  static float max_abs_diff(const Matrix& a, const Matrix& b);

  /// Frobenius norm.
  float frobenius_norm() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  AlignedBuffer<float> buf_;
};

}  // namespace elrec
