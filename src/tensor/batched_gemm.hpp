// Pointer-list batched GEMM.
//
// Mirrors the interface of cublasGemmBatchedEx that the paper's Algorithm 1
// feeds: three arrays of device pointers (Ptr_a, Ptr_b, Ptr_c) plus uniform
// problem dimensions. The Eff-TT pointer-preparation step assembles those
// lists; this kernel executes every (A_i, B_i, C_i) product.
#pragma once

#include <span>

#include "obs/metrics.hpp"
#include "tensor/gemm.hpp"

namespace elrec {

/// Uniform problem shape for one batched-GEMM launch.
struct BatchedGemmShape {
  index_t m = 0;
  index_t n = 0;
  index_t k = 0;
  index_t lda = 0;  // row stride of each A_i
  index_t ldb = 0;  // row stride of each B_i
  index_t ldc = 0;  // row stride of each C_i
  float alpha = 1.0f;
  float beta = 0.0f;
  Trans trans_a = Trans::kNo;
  Trans trans_b = Trans::kNo;
};

/// Computes C_i = alpha * op(A_i) * op(B_i) + beta * C_i for every i.
/// Entries where c[i] == nullptr are skipped — Algorithm 1 leaves gaps for
/// indices whose prefix product is computed by another thread.
void batched_gemm(const BatchedGemmShape& shape,
                  std::span<const float* const> a,
                  std::span<const float* const> b, std::span<float* const> c);

/// Bookkeeping counters so benchmarks can report launch/FLOP savings.
///
/// The counters live in the process-wide MetricsRegistry under
/// "tensor.batched_gemm.*" (launches / products / skipped / flops), so they
/// appear in every MetricsSnapshot and BENCH_*.json metrics block; this
/// struct is the cached hot-path handle onto those registry entries.
/// Relaxed-atomic semantics as before: launches recorded on a pipeline
/// worker thread are visible from the test/driver thread, totals are exact,
/// only the *ordering* between concurrent launches is unspecified.
struct BatchedGemmStats {
  obs::Counter& launches;  // batched_gemm() calls
  obs::Counter& products;  // individual GEMMs executed
  obs::Counter& skipped;   // nullptr gaps (reuse wins)
  obs::Counter& flops;     // 2*m*n*k per executed product
  void reset() {
    launches.reset();
    products.reset();
    skipped.reset();
    flops.reset();
  }
};

/// Process-wide stats accumulator (enabled unconditionally; negligible cost).
BatchedGemmStats& batched_gemm_stats();

/// Plain-value snapshot of the process-wide counters.
struct BatchedGemmCounts {
  std::size_t launches = 0;
  std::size_t products = 0;
  std::size_t skipped = 0;
  std::size_t flops = 0;
};

inline BatchedGemmCounts batched_gemm_counts() {
  const auto& s = batched_gemm_stats();
  return {s.launches.load(), s.products.load(), s.skipped.load(),
          s.flops.load()};
}

/// Scoped delta over the process-wide counters: captures a snapshot at
/// construction; delta() reports only the launches issued since. Lets
/// per-request/per-batch compute accounting (the serving scheduler) exclude
/// warm-up and other callers' history without reset()ing the global state.
/// Note the counters are process-wide, so concurrent launches from OTHER
/// threads land in the delta too; attribute deltas only around regions you
/// know are exclusive, or treat them as an upper bound.
class ScopedBatchedGemmCounters {
 public:
  ScopedBatchedGemmCounters() : start_(batched_gemm_counts()) {}

  BatchedGemmCounts delta() const {
    const BatchedGemmCounts now = batched_gemm_counts();
    return {now.launches - start_.launches, now.products - start_.products,
            now.skipped - start_.skipped, now.flops - start_.flops};
  }

 private:
  BatchedGemmCounts start_;
};

}  // namespace elrec
