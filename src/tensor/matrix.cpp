#include "tensor/matrix.hpp"

#include <cmath>

namespace elrec {

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> rows) {
  const index_t r = static_cast<index_t>(rows.size());
  ELREC_CHECK(r > 0, "initializer list must be non-empty");
  const index_t c = static_cast<index_t>(rows.begin()->size());
  resize(r, c);
  index_t i = 0;
  for (const auto& row_values : rows) {
    ELREC_CHECK(static_cast<index_t>(row_values.size()) == c,
                "ragged initializer list");
    index_t j = 0;
    for (float v : row_values) at(i, j++) = v;
    ++i;
  }
}

void Matrix::resize(index_t rows, index_t cols) {
  ELREC_CHECK(rows >= 0 && cols >= 0, "negative matrix shape");
  rows_ = rows;
  cols_ = cols;
  buf_.resize(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
}

void Matrix::fill_normal(Prng& rng, float mean, float stddev) {
  for (index_t i = 0; i < size(); ++i) {
    buf_[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.normal(mean, stddev));
  }
}

void Matrix::fill_uniform(Prng& rng, float lo, float hi) {
  for (index_t i = 0; i < size(); ++i) {
    buf_[static_cast<std::size_t>(i)] = static_cast<float>(rng.uniform(lo, hi));
  }
}

void Matrix::fill_xavier(Prng& rng) {
  const double bound = std::sqrt(6.0 / (rows_ + cols_));
  fill_uniform(rng, static_cast<float>(-bound), static_cast<float>(bound));
}

float Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  ELREC_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "shape mismatch in max_abs_diff");
  float m = 0.0f;
  for (index_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

float Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (index_t i = 0; i < size(); ++i) {
    acc += static_cast<double>(data()[i]) * data()[i];
  }
  return static_cast<float>(std::sqrt(acc));
}

}  // namespace elrec
