#include "tensor/vector_ops.hpp"

#include <algorithm>
#include <cmath>

namespace elrec {

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  ELREC_DCHECK(x.size() == y.size());
#pragma omp simd
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void copy(std::span<const float> x, std::span<float> y) {
  ELREC_DCHECK(x.size() == y.size());
  std::copy(x.begin(), x.end(), y.begin());
}

void scale(float alpha, std::span<float> x) {
  for (auto& v : x) v *= alpha;
}

float dot(std::span<const float> x, std::span<const float> y) {
  ELREC_DCHECK(x.size() == y.size());
  float acc = 0.0f;
#pragma omp simd reduction(+ : acc)
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

float sum(std::span<const float> x) {
  float acc = 0.0f;
  for (float v : x) acc += v;
  return acc;
}

void relu_inplace(std::span<float> x) {
  for (auto& v : x) v = std::max(v, 0.0f);
}

void relu_backward(std::span<const float> x, std::span<const float> dy,
                   std::span<float> dx) {
  ELREC_DCHECK(x.size() == dy.size() && dy.size() == dx.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
  }
}

float sigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

}  // namespace elrec
