// Elementwise / reduction primitives shared by the embedding and MLP kernels.
#pragma once

#include <span>

#include "tensor/matrix.hpp"

namespace elrec {

/// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// y = x
void copy(std::span<const float> x, std::span<float> y);

/// x *= alpha
void scale(float alpha, std::span<float> x);

/// dot(x, y)
float dot(std::span<const float> x, std::span<const float> y);

/// sum of entries
float sum(std::span<const float> x);

/// Elementwise in-place ReLU.
void relu_inplace(std::span<float> x);

/// dx = dy where x > 0 else 0 (ReLU backward, given pre-activation x).
void relu_backward(std::span<const float> x, std::span<const float> dy,
                   std::span<float> dx);

/// Numerically stable logistic sigmoid.
float sigmoid(float x);

}  // namespace elrec
