// Single-precision GEMM on row-major data.
//
// This is the compute substrate standing in for cuBLAS: a blocked, OpenMP-
// parallel kernel with a BLAS-like pointer interface so that views into
// larger buffers (TT-core slices, activation slabs) multiply without copies.
#pragma once

#include "tensor/matrix.hpp"

namespace elrec {

enum class Trans { kNo, kYes };

/// C = alpha * op(A) * op(B) + beta * C, row-major.
/// op(A) is m x k, op(B) is k x n, C is m x n. lda/ldb/ldc are the leading
/// dimensions (row strides) of the *stored* matrices.
void gemm(Trans trans_a, Trans trans_b, index_t m, index_t n, index_t k,
          float alpha, const float* a, index_t lda, const float* b,
          index_t ldb, float beta, float* c, index_t ldc);

/// Convenience wrapper: c = op(a) * op(b) with shape checks; resizes c.
void matmul(const Matrix& a, const Matrix& b, Matrix& c,
            Trans trans_a = Trans::kNo, Trans trans_b = Trans::kNo);

/// y = op(A) * x (+ beta * y). op(A) is m x n; x has n entries, y has m.
void gemv(Trans trans_a, index_t m, index_t n, float alpha, const float* a,
          index_t lda, const float* x, float beta, float* y);

}  // namespace elrec
