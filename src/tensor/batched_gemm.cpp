#include "tensor/batched_gemm.hpp"

#include "obs/trace.hpp"

namespace elrec {

BatchedGemmStats& batched_gemm_stats() {
  auto& reg = obs::MetricsRegistry::global();
  static BatchedGemmStats stats{reg.counter("tensor.batched_gemm.launches"),
                                reg.counter("tensor.batched_gemm.products"),
                                reg.counter("tensor.batched_gemm.skipped"),
                                reg.counter("tensor.batched_gemm.flops")};
  return stats;
}

void batched_gemm(const BatchedGemmShape& shape,
                  std::span<const float* const> a,
                  std::span<const float* const> b, std::span<float* const> c) {
  ELREC_CHECK(a.size() == b.size() && b.size() == c.size(),
              "batched_gemm pointer lists must have equal length");
  TRACE_SPAN("tensor.batched_gemm");

  std::size_t executed = 0;
// `executed` is an integral count — order-free; the float work is
// per-product, never reduced across threads, so run-to-run bitwise
// output is unaffected.
// NOLINTNEXTLINE(elrec-nondeterministic-reduction): integral count only
#pragma omp parallel for schedule(static) reduction(+ : executed) \
    if (a.size() >= 64)
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (c[i] == nullptr) continue;
    gemm(shape.trans_a, shape.trans_b, shape.m, shape.n, shape.k, shape.alpha,
         a[i], shape.lda, b[i], shape.ldb, shape.beta, c[i], shape.ldc);
    ++executed;
  }
  // One relaxed add per counter per launch; exact totals, no per-product
  // contention.
  auto& stats = batched_gemm_stats();
  stats.launches.add(1);
  stats.products.add(executed);
  stats.skipped.add(a.size() - executed);
  stats.flops.add(executed * 2ULL * static_cast<std::size_t>(shape.m) *
                  static_cast<std::size_t>(shape.n) *
                  static_cast<std::size_t>(shape.k));
}

}  // namespace elrec
