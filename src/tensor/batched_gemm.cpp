#include "tensor/batched_gemm.hpp"

namespace elrec {

BatchedGemmStats& batched_gemm_stats() {
  static BatchedGemmStats stats;
  return stats;
}

void batched_gemm(const BatchedGemmShape& shape,
                  std::span<const float* const> a,
                  std::span<const float* const> b, std::span<float* const> c) {
  ELREC_CHECK(a.size() == b.size() && b.size() == c.size(),
              "batched_gemm pointer lists must have equal length");

  std::size_t executed = 0;
#pragma omp parallel for schedule(static) reduction(+ : executed) \
    if (a.size() >= 64)
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (c[i] == nullptr) continue;
    gemm(shape.trans_a, shape.trans_b, shape.m, shape.n, shape.k, shape.alpha,
         a[i], shape.lda, b[i], shape.ldb, shape.beta, c[i], shape.ldc);
    ++executed;
  }
  // One relaxed add per counter per launch; exact totals, no per-product
  // contention.
  auto& stats = batched_gemm_stats();
  stats.launches.fetch_add(1, std::memory_order_relaxed);
  stats.products.fetch_add(executed, std::memory_order_relaxed);
  stats.skipped.fetch_add(a.size() - executed, std::memory_order_relaxed);
  stats.flops.fetch_add(executed * 2ULL * static_cast<std::size_t>(shape.m) *
                            static_cast<std::size_t>(shape.n) *
                            static_cast<std::size_t>(shape.k),
                        std::memory_order_relaxed);
}

}  // namespace elrec
