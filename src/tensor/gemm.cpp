#include "tensor/gemm.hpp"

#include <algorithm>

namespace elrec {
namespace {

// Cache-blocking parameters tuned for typical L1/L2 sizes; correctness does
// not depend on them.
constexpr index_t kBlockM = 64;
constexpr index_t kBlockN = 128;
constexpr index_t kBlockK = 256;

// Inner kernel for the NN case: C[i, :] += alpha * A[i, k] * B[k, :].
// The j-loop over contiguous B rows vectorizes well.
void gemm_nn_block(index_t m, index_t n, index_t k, float alpha,
                   const float* a, index_t lda, const float* b, index_t ldb,
                   float* c, index_t ldc) {
  for (index_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (index_t kk = 0; kk < k; ++kk) {
      const float aik = alpha * arow[kk];
      if (aik == 0.0f) continue;
      const float* brow = b + kk * ldb;
      for (index_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

// Generic element accessor honoring transposition.
inline float elem(const float* p, index_t ld, Trans t, index_t r, index_t c) {
  return t == Trans::kNo ? p[r * ld + c] : p[c * ld + r];
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, index_t m, index_t n, index_t k,
          float alpha, const float* a, index_t lda, const float* b,
          index_t ldb, float beta, float* c, index_t ldc) {
  ELREC_DCHECK(m >= 0 && n >= 0 && k >= 0);
  if (m == 0 || n == 0) return;

  // Scale C by beta first; the accumulation kernels then just add.
  if (beta == 0.0f) {
    for (index_t i = 0; i < m; ++i) {
      std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
    }
  } else if (beta != 1.0f) {
    for (index_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      for (index_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  if (k == 0 || alpha == 0.0f) return;

  if (trans_a == Trans::kNo && trans_b == Trans::kNo) {
    // Blocked NN path — the hot case for every EL-Rec kernel.
#pragma omp parallel for schedule(static) if (m >= 2 * kBlockM)
    for (index_t i0 = 0; i0 < m; i0 += kBlockM) {
      const index_t mb = std::min(kBlockM, m - i0);
      for (index_t k0 = 0; k0 < k; k0 += kBlockK) {
        const index_t kb = std::min(kBlockK, k - k0);
        for (index_t j0 = 0; j0 < n; j0 += kBlockN) {
          const index_t nb = std::min(kBlockN, n - j0);
          gemm_nn_block(mb, nb, kb, alpha, a + i0 * lda + k0, lda,
                        b + k0 * ldb + j0, ldb, c + i0 * ldc + j0, ldc);
        }
      }
    }
    return;
  }

  if (trans_a == Trans::kYes && trans_b == Trans::kNo) {
    // C[i,:] += alpha * A[k,i] * B[k,:]; still streams B rows contiguously.
#pragma omp parallel for schedule(static) if (m >= 2 * kBlockM)
    for (index_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      for (index_t kk = 0; kk < k; ++kk) {
        const float aik = alpha * a[kk * lda + i];
        if (aik == 0.0f) continue;
        const float* brow = b + kk * ldb;
        for (index_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
    return;
  }

  if (trans_a == Trans::kNo && trans_b == Trans::kYes) {
    // C[i,j] += alpha * dot(A[i,:], B[j,:]); both rows contiguous.
#pragma omp parallel for schedule(static) if (m >= 2 * kBlockM)
    for (index_t i = 0; i < m; ++i) {
      const float* arow = a + i * lda;
      float* crow = c + i * ldc;
      for (index_t j = 0; j < n; ++j) {
        const float* brow = b + j * ldb;
        float acc = 0.0f;
        for (index_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] += alpha * acc;
      }
    }
    return;
  }

  // TT case — rare; naive loops.
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (index_t kk = 0; kk < k; ++kk) {
        acc += elem(a, lda, trans_a, i, kk) * elem(b, ldb, trans_b, kk, j);
      }
      c[i * ldc + j] += alpha * acc;
    }
  }
}

void matmul(const Matrix& a, const Matrix& b, Matrix& c, Trans trans_a,
            Trans trans_b) {
  const index_t m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const index_t ka = trans_a == Trans::kNo ? a.cols() : a.rows();
  const index_t kb = trans_b == Trans::kNo ? b.rows() : b.cols();
  const index_t n = trans_b == Trans::kNo ? b.cols() : b.rows();
  ELREC_CHECK(ka == kb, "inner dimensions do not match in matmul");
  c.resize(m, n);
  gemm(trans_a, trans_b, m, n, ka, 1.0f, a.data(), a.cols(), b.data(),
       b.cols(), 0.0f, c.data(), c.cols());
}

void gemv(Trans trans_a, index_t m, index_t n, float alpha, const float* a,
          index_t lda, const float* x, float beta, float* y) {
  if (trans_a == Trans::kNo) {
    for (index_t i = 0; i < m; ++i) {
      const float* arow = a + i * lda;
      float acc = 0.0f;
      for (index_t j = 0; j < n; ++j) acc += arow[j] * x[j];
      y[i] = beta * (beta == 0.0f ? 0.0f : y[i]) + alpha * acc;
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      y[j] = beta * (beta == 0.0f ? 0.0f : y[j]);
    }
    for (index_t i = 0; i < m; ++i) {
      const float xi = alpha * x[i];
      if (xi == 0.0f) continue;
      const float* arow = a + i * lda;
      for (index_t j = 0; j < n; ++j) y[j] += xi * arow[j];
    }
  }
}

}  // namespace elrec
