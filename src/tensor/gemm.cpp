#include "tensor/gemm.hpp"

#include <algorithm>

namespace elrec {
namespace {

// Cache-blocking parameters tuned for typical L1/L2 sizes; correctness does
// not depend on them.
constexpr index_t kBlockM = 64;
constexpr index_t kBlockN = 128;
constexpr index_t kBlockK = 256;

// Register micro-tile: kMR rows x kNR columns of C are held in accumulators
// across the whole k extent of a block, so C traffic drops from O(m*n*k/kNR)
// cache lines to one read-modify-write per tile. 4x16 keeps the working set
// at 4 vector accumulators on AVX-512 (8 on AVX2) plus one B row.
constexpr index_t kMR = 4;
constexpr index_t kNR = 16;

#define ELREC_RESTRICT __restrict__

// ---------------------------------------------------------------------------
// NN path: C[i, :] += alpha * A[i, k] * B[k, :].
// ---------------------------------------------------------------------------

// Full 4x16 tile.
inline void kernel_nn_4x16(index_t kb, float alpha,
                           const float* ELREC_RESTRICT a, index_t lda,
                           const float* ELREC_RESTRICT b, index_t ldb,
                           float* ELREC_RESTRICT c, index_t ldc) {
  float acc0[kNR] = {}, acc1[kNR] = {}, acc2[kNR] = {}, acc3[kNR] = {};
  for (index_t kk = 0; kk < kb; ++kk) {
    const float* ELREC_RESTRICT brow = b + kk * ldb;
    const float a0 = a[kk];
    const float a1 = a[lda + kk];
    const float a2 = a[2 * lda + kk];
    const float a3 = a[3 * lda + kk];
#pragma omp simd
    for (index_t j = 0; j < kNR; ++j) {
      const float bj = brow[j];
      acc0[j] += a0 * bj;
      acc1[j] += a1 * bj;
      acc2[j] += a2 * bj;
      acc3[j] += a3 * bj;
    }
  }
#pragma omp simd
  for (index_t j = 0; j < kNR; ++j) {
    c[j] += alpha * acc0[j];
    c[ldc + j] += alpha * acc1[j];
    c[2 * ldc + j] += alpha * acc2[j];
    c[3 * ldc + j] += alpha * acc3[j];
  }
}

// Partial tile (mr <= kMR, nr <= kNR) at the m/n edges.
inline void kernel_nn_edge(index_t mr, index_t nr, index_t kb, float alpha,
                           const float* ELREC_RESTRICT a, index_t lda,
                           const float* ELREC_RESTRICT b, index_t ldb,
                           float* ELREC_RESTRICT c, index_t ldc) {
  float acc[kMR][kNR] = {};
  for (index_t kk = 0; kk < kb; ++kk) {
    const float* ELREC_RESTRICT brow = b + kk * ldb;
    for (index_t i = 0; i < mr; ++i) {
      const float aik = a[i * lda + kk];
#pragma omp simd
      for (index_t j = 0; j < nr; ++j) acc[i][j] += aik * brow[j];
    }
  }
  for (index_t i = 0; i < mr; ++i) {
#pragma omp simd
    for (index_t j = 0; j < nr; ++j) c[i * ldc + j] += alpha * acc[i][j];
  }
}

// Dedicated path for very narrow C (n <= 4) — the Eff-TT stage-2 shape
// (n = n_3, often 2) where a 16-wide tile would waste nearly every lane.
// Keeps the n accumulators of one output row in registers across k.
inline void gemm_nn_tiny_n(index_t m, index_t n, index_t k, float alpha,
                           const float* ELREC_RESTRICT a, index_t lda,
                           const float* ELREC_RESTRICT b, index_t ldb,
                           float* ELREC_RESTRICT c, index_t ldc) {
  for (index_t i = 0; i < m; ++i) {
    const float* ELREC_RESTRICT arow = a + i * lda;
    float acc[4] = {};
    for (index_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      const float* ELREC_RESTRICT bk = b + kk * ldb;
      for (index_t j = 0; j < n; ++j) acc[j] += aik * bk[j];
    }
    float* ELREC_RESTRICT crow = c + i * ldc;
    for (index_t j = 0; j < n; ++j) crow[j] += alpha * acc[j];
  }
}

// One cache block of the NN path, tiled into register micro-kernels.
void gemm_nn_block(index_t m, index_t n, index_t k, float alpha,
                   const float* a, index_t lda, const float* b, index_t ldb,
                   float* c, index_t ldc) {
  if (n <= 4) {
    gemm_nn_tiny_n(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }
  index_t i = 0;
  for (; i + kMR <= m; i += kMR) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    index_t j = 0;
    for (; j + kNR <= n; j += kNR) {
      kernel_nn_4x16(k, alpha, arow, lda, b + j, ldb, crow + j, ldc);
    }
    if (j < n) {
      kernel_nn_edge(kMR, n - j, k, alpha, arow, lda, b + j, ldb, crow + j,
                     ldc);
    }
  }
  if (i < m) {
    for (index_t j = 0; j < n; j += kNR) {
      kernel_nn_edge(m - i, std::min(kNR, n - j), k, alpha, a + i * lda, lda,
                     b + j, ldb, c + i * ldc + j, ldc);
    }
  }
}

// ---------------------------------------------------------------------------
// TN path: C[i, :] += alpha * A[k, i] * B[k, :]. The kMR A elements per k
// step are contiguous (a[kk*lda + i .. i+3]), so the tile loads stream.
// ---------------------------------------------------------------------------

inline void kernel_tn_4x16(index_t kb, float alpha,
                           const float* ELREC_RESTRICT a, index_t lda,
                           const float* ELREC_RESTRICT b, index_t ldb,
                           float* ELREC_RESTRICT c, index_t ldc) {
  float acc0[kNR] = {}, acc1[kNR] = {}, acc2[kNR] = {}, acc3[kNR] = {};
  for (index_t kk = 0; kk < kb; ++kk) {
    const float* ELREC_RESTRICT brow = b + kk * ldb;
    const float* ELREC_RESTRICT acol = a + kk * lda;
    const float a0 = acol[0];
    const float a1 = acol[1];
    const float a2 = acol[2];
    const float a3 = acol[3];
#pragma omp simd
    for (index_t j = 0; j < kNR; ++j) {
      const float bj = brow[j];
      acc0[j] += a0 * bj;
      acc1[j] += a1 * bj;
      acc2[j] += a2 * bj;
      acc3[j] += a3 * bj;
    }
  }
#pragma omp simd
  for (index_t j = 0; j < kNR; ++j) {
    c[j] += alpha * acc0[j];
    c[ldc + j] += alpha * acc1[j];
    c[2 * ldc + j] += alpha * acc2[j];
    c[3 * ldc + j] += alpha * acc3[j];
  }
}

inline void kernel_tn_edge(index_t mr, index_t nr, index_t kb, float alpha,
                           const float* ELREC_RESTRICT a, index_t lda,
                           const float* ELREC_RESTRICT b, index_t ldb,
                           float* ELREC_RESTRICT c, index_t ldc) {
  float acc[kMR][kNR] = {};
  for (index_t kk = 0; kk < kb; ++kk) {
    const float* ELREC_RESTRICT brow = b + kk * ldb;
    const float* ELREC_RESTRICT acol = a + kk * lda;
    for (index_t i = 0; i < mr; ++i) {
      const float aik = acol[i];
#pragma omp simd
      for (index_t j = 0; j < nr; ++j) acc[i][j] += aik * brow[j];
    }
  }
  for (index_t i = 0; i < mr; ++i) {
#pragma omp simd
    for (index_t j = 0; j < nr; ++j) c[i * ldc + j] += alpha * acc[i][j];
  }
}

void gemm_tn_block(index_t m, index_t n, index_t k, float alpha,
                   const float* a, index_t lda, const float* b, index_t ldb,
                   float* c, index_t ldc) {
  index_t i = 0;
  for (; i + kMR <= m; i += kMR) {
    float* crow = c + i * ldc;
    index_t j = 0;
    for (; j + kNR <= n; j += kNR) {
      kernel_tn_4x16(k, alpha, a + i, lda, b + j, ldb, crow + j, ldc);
    }
    if (j < n) {
      kernel_tn_edge(kMR, n - j, k, alpha, a + i, lda, b + j, ldb, crow + j,
                     ldc);
    }
  }
  if (i < m) {
    for (index_t j = 0; j < n; j += kNR) {
      kernel_tn_edge(m - i, std::min(kNR, n - j), k, alpha, a + i, lda, b + j,
                     ldb, c + i * ldc + j, ldc);
    }
  }
}

// ---------------------------------------------------------------------------
// NT path: C[i, j] += alpha * dot(A[i, :], B[j, :]); both operands stream
// contiguously along k, so the kernel is 4 simultaneous simd dot products.
// ---------------------------------------------------------------------------

void gemm_nt_row(index_t n, index_t k, float alpha,
                 const float* ELREC_RESTRICT arow,
                 const float* ELREC_RESTRICT b, index_t ldb,
                 float* ELREC_RESTRICT crow) {
  index_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const float* ELREC_RESTRICT b0 = b + j * ldb;
    const float* ELREC_RESTRICT b1 = b + (j + 1) * ldb;
    const float* ELREC_RESTRICT b2 = b + (j + 2) * ldb;
    const float* ELREC_RESTRICT b3 = b + (j + 3) * ldb;
    float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
#pragma omp simd reduction(+ : s0, s1, s2, s3)
    for (index_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      s0 += av * b0[kk];
      s1 += av * b1[kk];
      s2 += av * b2[kk];
      s3 += av * b3[kk];
    }
    crow[j] += alpha * s0;
    crow[j + 1] += alpha * s1;
    crow[j + 2] += alpha * s2;
    crow[j + 3] += alpha * s3;
  }
  for (; j < n; ++j) {
    const float* ELREC_RESTRICT brow = b + j * ldb;
    float s = 0.0f;
#pragma omp simd reduction(+ : s)
    for (index_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
    crow[j] += alpha * s;
  }
}

// Generic element accessor honoring transposition (TT fallback only).
inline float elem(const float* p, index_t ld, Trans t, index_t r, index_t c) {
  return t == Trans::kNo ? p[r * ld + c] : p[c * ld + r];
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, index_t m, index_t n, index_t k,
          float alpha, const float* a, index_t lda, const float* b,
          index_t ldb, float beta, float* c, index_t ldc) {
  ELREC_DCHECK(m >= 0 && n >= 0 && k >= 0);
  if (m == 0 || n == 0) return;

  // Scale C by beta first; the accumulation kernels then just add.
  if (beta == 0.0f) {
#pragma omp parallel for schedule(static) if (m >= 4 * kBlockM)
    for (index_t i = 0; i < m; ++i) {
      std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
    }
  } else if (beta != 1.0f) {
#pragma omp parallel for schedule(static) if (m >= 4 * kBlockM)
    for (index_t i = 0; i < m; ++i) {
      float* ELREC_RESTRICT crow = c + i * ldc;
#pragma omp simd
      for (index_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  if (k == 0 || alpha == 0.0f) return;

  if (trans_a == Trans::kNo && trans_b == Trans::kNo) {
    // Small-matrix fast path — the tiny TT shapes batched_gemm launches
    // (m, k <= ~32) skip the cache-block loop entirely.
    if (m <= kBlockM && n <= kBlockN && k <= kBlockK) {
      gemm_nn_block(m, n, k, alpha, a, lda, b, ldb, c, ldc);
      return;
    }
    // Blocked NN path — the hot case for every EL-Rec kernel. Threads split
    // disjoint row blocks and k stays sequential per C tile, so results do
    // not depend on the thread count.
#pragma omp parallel for schedule(static) if (m >= 2 * kBlockM)
    for (index_t i0 = 0; i0 < m; i0 += kBlockM) {
      const index_t mb = std::min(kBlockM, m - i0);
      for (index_t k0 = 0; k0 < k; k0 += kBlockK) {
        const index_t kb = std::min(kBlockK, k - k0);
        for (index_t j0 = 0; j0 < n; j0 += kBlockN) {
          const index_t nb = std::min(kBlockN, n - j0);
          gemm_nn_block(mb, nb, kb, alpha, a + i0 * lda + k0, lda,
                        b + k0 * ldb + j0, ldb, c + i0 * ldc + j0, ldc);
        }
      }
    }
    return;
  }

  if (trans_a == Trans::kYes && trans_b == Trans::kNo) {
    if (m <= kBlockM && n <= kBlockN && k <= kBlockK) {
      gemm_tn_block(m, n, k, alpha, a, lda, b, ldb, c, ldc);
      return;
    }
    // k is the large dimension here (activation gradients: k == batch), so
    // block it for cache reuse of the C tile accumulators.
#pragma omp parallel for schedule(static) if (m >= 2 * kBlockM)
    for (index_t i0 = 0; i0 < m; i0 += kBlockM) {
      const index_t mb = std::min(kBlockM, m - i0);
      for (index_t k0 = 0; k0 < k; k0 += kBlockK) {
        const index_t kb = std::min(kBlockK, k - k0);
        for (index_t j0 = 0; j0 < n; j0 += kBlockN) {
          const index_t nb = std::min(kBlockN, n - j0);
          gemm_tn_block(mb, nb, kb, alpha, a + k0 * lda + i0, lda,
                        b + k0 * ldb + j0, ldb, c + i0 * ldc + j0, ldc);
        }
      }
    }
    return;
  }

  if (trans_a == Trans::kNo && trans_b == Trans::kYes) {
#pragma omp parallel for schedule(static) if (m >= 2 * kBlockM)
    for (index_t i = 0; i < m; ++i) {
      gemm_nt_row(n, k, alpha, a + i * lda, b, ldb, c + i * ldc);
    }
    return;
  }

  // TT case — rare; naive loops.
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (index_t kk = 0; kk < k; ++kk) {
        acc += elem(a, lda, trans_a, i, kk) * elem(b, ldb, trans_b, kk, j);
      }
      c[i * ldc + j] += alpha * acc;
    }
  }
}

void matmul(const Matrix& a, const Matrix& b, Matrix& c, Trans trans_a,
            Trans trans_b) {
  const index_t m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const index_t ka = trans_a == Trans::kNo ? a.cols() : a.rows();
  const index_t kb = trans_b == Trans::kNo ? b.rows() : b.cols();
  const index_t n = trans_b == Trans::kNo ? b.cols() : b.rows();
  ELREC_CHECK(ka == kb, "inner dimensions do not match in matmul");
  c.resize(m, n);
  gemm(trans_a, trans_b, m, n, ka, 1.0f, a.data(), a.cols(), b.data(),
       b.cols(), 0.0f, c.data(), c.cols());
}

void gemv(Trans trans_a, index_t m, index_t n, float alpha, const float* a,
          index_t lda, const float* x, float beta, float* y) {
  if (trans_a == Trans::kNo) {
#pragma omp parallel for schedule(static) if (m >= 512)
    for (index_t i = 0; i < m; ++i) {
      const float* ELREC_RESTRICT arow = a + i * lda;
      float acc = 0.0f;
#pragma omp simd reduction(+ : acc)
      for (index_t j = 0; j < n; ++j) acc += arow[j] * x[j];
      y[i] = beta * (beta == 0.0f ? 0.0f : y[i]) + alpha * acc;
    }
    return;
  }
  // Transposed: y[j] += alpha * A[i, j] * x[i]. Threads own disjoint j
  // ranges and each walks all of A's rows, so the i-order (and therefore
  // the float sum order) is identical at any thread count.
  constexpr index_t kColChunk = 256;
#pragma omp parallel for schedule(static) if (n >= 2 * kColChunk)
  for (index_t j0 = 0; j0 < n; j0 += kColChunk) {
    const index_t j1 = std::min(j0 + kColChunk, n);
    if (beta == 0.0f) {
      std::fill(y + j0, y + j1, 0.0f);
    } else if (beta != 1.0f) {
#pragma omp simd
      for (index_t j = j0; j < j1; ++j) y[j] *= beta;
    }
    for (index_t i = 0; i < m; ++i) {
      const float xi = alpha * x[i];
      if (xi == 0.0f) continue;
      const float* ELREC_RESTRICT arow = a + i * lda;
#pragma omp simd
      for (index_t j = j0; j < j1; ++j) y[j] += xi * arow[j];
    }
  }
}

}  // namespace elrec
