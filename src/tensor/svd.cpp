#include "tensor/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace elrec {
namespace {

// One-sided Jacobi SVD of a tall m x n column-major workspace (m >= n):
// orthogonalizes column pairs of W until convergence; then W = U * diag(s),
// and V accumulates the rotations.
void jacobi_svd_tall(std::vector<double>& w, index_t m, index_t n,
                     std::vector<double>& v, int max_sweeps, double tol) {
  // v starts as identity (n x n, column-major).
  v.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (index_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto col = [&](index_t j) { return w.data() + j * m; };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        const double* cp = col(p);
        const double* cq = col(q);
        for (index_t i = 0; i < m; ++i) {
          app += cp[i] * cp[i];
          aqq += cq[i] * cq[i];
          apq += cp[i] * cq[i];
        }
        if (std::fabs(apq) <= tol * std::sqrt(app * aqq) || apq == 0.0) {
          continue;
        }
        off += std::fabs(apq);
        // Classic Jacobi rotation zeroing the (p, q) Gram entry.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        double* wp = col(p);
        double* wq = col(q);
        for (index_t i = 0; i < m; ++i) {
          const double a = wp[i];
          const double b = wq[i];
          wp[i] = c * a - s * b;
          wq[i] = s * a + c * b;
        }
        double* vp = v.data() + p * n;
        double* vq = v.data() + q * n;
        for (index_t i = 0; i < n; ++i) {
          const double a = vp[i];
          const double b = vq[i];
          vp[i] = c * a - s * b;
          vq[i] = s * a + c * b;
        }
      }
    }
    if (off == 0.0) break;
  }
}

}  // namespace

SvdResult svd(const Matrix& a, int max_sweeps, double tol) {
  ELREC_CHECK(!a.empty(), "svd of empty matrix");
  const index_t m = a.rows();
  const index_t n = a.cols();
  const bool transpose = m < n;  // operate on the tall orientation
  const index_t tm = transpose ? n : m;
  const index_t tn = transpose ? m : n;

  // Column-major copy of (possibly transposed) A.
  std::vector<double> w(static_cast<std::size_t>(tm) * tn);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      const double val = a.at(i, j);
      if (transpose) {
        w[static_cast<std::size_t>(i) * tm + j] = val;  // column i, row j
      } else {
        w[static_cast<std::size_t>(j) * tm + i] = val;  // column j, row i
      }
    }
  }

  std::vector<double> v;
  jacobi_svd_tall(w, tm, tn, v, max_sweeps, tol);

  // Singular values = column norms of W; columns normalize into U.
  std::vector<double> sig(static_cast<std::size_t>(tn));
  for (index_t j = 0; j < tn; ++j) {
    double norm = 0.0;
    const double* cj = w.data() + j * tm;
    for (index_t i = 0; i < tm; ++i) norm += cj[i] * cj[i];
    sig[static_cast<std::size_t>(j)] = std::sqrt(norm);
  }

  // Order singular values descending.
  std::vector<index_t> order(static_cast<std::size_t>(tn));
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    return sig[static_cast<std::size_t>(x)] > sig[static_cast<std::size_t>(y)];
  });

  const index_t r = tn;
  SvdResult out;
  out.sigma.resize(static_cast<std::size_t>(r));
  // "tall" factors: TU is tm x r (normalized W columns), TV is tn x r.
  Matrix tu(tm, r), tv(tn, r);
  for (index_t jj = 0; jj < r; ++jj) {
    const index_t j = order[static_cast<std::size_t>(jj)];
    const double s = sig[static_cast<std::size_t>(j)];
    out.sigma[static_cast<std::size_t>(jj)] = static_cast<float>(s);
    const double inv = s > 0.0 ? 1.0 / s : 0.0;
    const double* cj = w.data() + j * tm;
    for (index_t i = 0; i < tm; ++i) {
      tu.at(i, jj) = static_cast<float>(cj[i] * inv);
    }
    const double* vj = v.data() + j * tn;
    for (index_t i = 0; i < tn; ++i) {
      tv.at(i, jj) = static_cast<float>(vj[i]);
    }
  }

  if (!transpose) {
    out.u = std::move(tu);  // m x r
    out.vt.resize(r, n);    // vt = TV^T
    for (index_t i = 0; i < r; ++i) {
      for (index_t j = 0; j < n; ++j) out.vt.at(i, j) = tv.at(j, i);
    }
  } else {
    // A = (A^T)^T = (TU S TV^T)^T = TV S TU^T — so U = TV, V^T = TU^T.
    out.u = std::move(tv);  // m x r (tn == m here)
    out.vt.resize(r, n);
    for (index_t i = 0; i < r; ++i) {
      for (index_t j = 0; j < n; ++j) out.vt.at(i, j) = tu.at(j, i);
    }
  }
  return out;
}

SvdResult svd_truncated(const Matrix& a, index_t rank, double cutoff) {
  SvdResult full = svd(a);
  index_t keep = std::min<index_t>(rank, static_cast<index_t>(full.sigma.size()));
  if (cutoff > 0.0 && !full.sigma.empty()) {
    const double thresh = cutoff * full.sigma[0];
    while (keep > 1 && full.sigma[static_cast<std::size_t>(keep - 1)] < thresh) {
      --keep;
    }
  }
  SvdResult out;
  out.sigma.assign(full.sigma.begin(), full.sigma.begin() + keep);
  out.u.resize(full.u.rows(), keep);
  for (index_t i = 0; i < full.u.rows(); ++i) {
    for (index_t j = 0; j < keep; ++j) out.u.at(i, j) = full.u.at(i, j);
  }
  out.vt.resize(keep, full.vt.cols());
  for (index_t i = 0; i < keep; ++i) {
    for (index_t j = 0; j < full.vt.cols(); ++j) {
      out.vt.at(i, j) = full.vt.at(i, j);
    }
  }
  return out;
}

}  // namespace elrec
