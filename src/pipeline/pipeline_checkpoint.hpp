// Crash-safe checkpointing for the pipeline training system.
//
// A pipeline checkpoint is the durable pair (host-store weights, next batch
// to run). It is written at a quiescent point — every gradient up to
// `next_batch - 1` applied, none beyond — via write-to-temp + checksum
// footer + atomic rename, so a crash at any instant leaves either the old
// or the new checkpoint fully loadable, never a torn file. Replaying the
// batch stream from `next_batch` reproduces the uninterrupted run exactly.
#pragma once

#include <string>

#include "pipeline/host_embedding_store.hpp"

namespace elrec {

/// Atomically persists the store plus the id of the next batch to run.
void save_pipeline_checkpoint(const HostEmbeddingStore& store,
                              index_t next_batch, const std::string& path);

/// Restores weights into a shape-identical store; returns `next_batch`.
/// Throws on missing, truncated, or corrupt files.
index_t load_pipeline_checkpoint(HostEmbeddingStore& store,
                                 const std::string& path);

}  // namespace elrec
