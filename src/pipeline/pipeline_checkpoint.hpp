// Crash-safe checkpointing for the pipeline training system.
//
// A pipeline checkpoint is the durable pair (host-store weights, next batch
// to run). It is written at a quiescent point — every gradient up to
// `next_batch - 1` applied, none beyond — via write-to-temp + checksum
// footer + atomic rename, so a crash at any instant leaves either the old
// or the new checkpoint fully loadable, never a torn file. Replaying the
// batch stream from `next_batch` reproduces the uninterrupted run exactly.
//
// Codec provenance: a run under the null codec writes the legacy 'EPC1'
// format, byte-identical to pre-codec checkpoints. A lossy run writes
// 'EPC2', which additionally records the codec id; loading under a
// different codec throws a structured PipelineError instead of silently
// resuming a stream whose error budget the new codec would not honour.
#pragma once

#include <string>

#include "codec/grad_codec.hpp"
#include "pipeline/host_embedding_store.hpp"
#include "pipeline/pipeline_error.hpp"  // load throws PipelineError on codec mismatch

namespace elrec {

/// Atomically persists the store plus the id of the next batch to run.
void save_pipeline_checkpoint(const HostEmbeddingStore& store,
                              index_t next_batch, const std::string& path,
                              CodecId codec = CodecId::kNull);

/// Restores weights into a shape-identical store; returns `next_batch`.
/// Throws on missing, truncated, or corrupt files, and PipelineError when
/// the checkpoint was written under a different codec than `codec`.
index_t load_pipeline_checkpoint(HostEmbeddingStore& store,
                                 const std::string& path,
                                 CodecId codec = CodecId::kNull);

}  // namespace elrec
