// Structured failure report for the pipeline training system.
//
// Any thread failure inside PipelineTrainer / ElRecTrainer is funneled into
// a PipelineError after the shutdown protocol has run (queues closed, server
// joined, in-flight gradients drained), so a caller that catches it holds a
// quiesced trainer and a consistent host store, and knows which batch and
// which stage failed.
#pragma once

#include <string>

#include "common/error.hpp"
#include "tensor/matrix.hpp"  // index_t

namespace elrec {

class PipelineError : public Error {
 public:
  PipelineError(std::string stage, index_t batch_id, std::string cause)
      : Error("pipeline failure in " + stage + " at batch " +
              std::to_string(batch_id) + ": " + cause),
        stage_(std::move(stage)),
        batch_id_(batch_id),
        cause_(std::move(cause)) {}

  /// "worker", "server", or "checkpoint".
  const std::string& stage() const { return stage_; }

  /// Batch being processed when the failure struck (-1 if none).
  index_t batch_id() const { return batch_id_; }

  /// what() of the underlying failure.
  const std::string& cause() const { return cause_; }

 private:
  std::string stage_;
  index_t batch_id_;
  std::string cause_;
};

}  // namespace elrec
