// EL-Rec end-to-end training system (paper Fig. 9).
//
// Assembles the full design: Eff-TT tables (and small dense tables) live on
// the "device" (worker), oversized tables live in the HostEmbeddingStore
// behind a prefetch/gradient queue pair, and an EmbeddingCache per host
// table repairs the pipeline RAW hazard. The server thread doubles as the
// data loader; the worker thread runs DLRM forward/backward.
#pragma once

#include <chrono>
#include <memory>
#include <string>

#include "common/retry.hpp"
#include "core/eff_tt_table.hpp"
#include "data/synthetic.hpp"
#include "dlrm/dlrm_model.hpp"
#include "pipeline/embedding_cache.hpp"
#include "pipeline/host_embedding_store.hpp"
#include "pipeline/pipeline_error.hpp"
#include "pipeline/pipeline_trainer.hpp"

namespace elrec {

/// Placement of one embedding table in the EL-Rec hierarchy.
enum class TablePlacement {
  kDeviceDense,  // small table, kept dense on the worker
  kDeviceTT,     // compressed to an Eff-TT table on the worker
  kHost,         // parameter-server resident, pipelined
};

struct ElRecTrainerConfig {
  DlrmConfig model;
  std::vector<TablePlacement> placement;  // one per table
  index_t tt_rank = 16;
  index_t queue_capacity = 4;   // 1 == EL-Rec (Sequential) of Fig. 16
  bool use_embedding_cache = true;
  float lr = 0.05f;
  std::uint64_t seed = 1;

  // Bounded retry + backoff for transient host-store pull/push faults.
  RetryPolicy host_retry;
  // Deadline for each queue wait; 0 = wait forever.
  std::chrono::milliseconds queue_timeout{0};
  // Every n batches the worker writes a crash-safe checkpoint of the model
  // plus every host store to checkpoint_path (0 = off).
  index_t checkpoint_every_n = 0;
  std::string checkpoint_path;

  // Codec for the host-table queue streams (prefetched rows + pushed
  // gradients). Null (default) keeps the run bitwise-identical to the
  // uncompressed trainer; checkpoints record the codec id and resume()
  // refuses a checkpoint written under a different codec.
  CodecConfig codec;
};

/// Chooses placements the way the paper does: tables above `tt_threshold`
/// rows are compressed to Eff-TT; tables above `host_threshold` (when TT is
/// disabled) or explicitly oversized ones go to the host.
std::vector<TablePlacement> default_placement(const DatasetSpec& spec,
                                              index_t tt_threshold,
                                              index_t host_threshold);

/// Host-resident table seen from the worker: forward pools from rows the
/// pipeline installed; backward captures aggregated gradients for the
/// gradient queue instead of updating locally.
class HostTableClient final : public IEmbeddingTable {
 public:
  HostTableClient(index_t num_rows, index_t dim)
      : num_rows_(num_rows), dim_(dim) {}

  index_t num_rows() const override { return num_rows_; }
  index_t dim() const override { return dim_; }

  /// Called by the trainer before forward: the synchronized parameter rows
  /// for this batch's unique indices.
  void install(std::vector<index_t> unique, Matrix rows);

  void forward(const IndexBatch& batch, Matrix& out) override;
  void backward_and_update(const IndexBatch& batch, const Matrix& grad_out,
                           float lr) override;

  std::size_t parameter_bytes() const override { return 0; }  // host-owned
  std::string name() const override { return "HostTableClient"; }

  void visit_parameters(const ParameterVisitor&) override {
    // Parameters live in the HostEmbeddingStore; nothing worker-resident.
  }

  const std::vector<index_t>& captured_indices() const { return unique_; }
  const Matrix& captured_grads() const { return grads_; }
  /// Post-update row values (rows - lr * grads) for the embedding cache.
  const Matrix& updated_rows() const { return updated_; }

  /// Recomputes updated_rows() from the installed rows and `grads` — the
  /// gradients as the host will see them after a lossy codec round trip —
  /// so the worker's cache tracks the host store, not the exact gradients
  /// that were never sent.
  void apply_decoded_update(const Matrix& grads, float lr);

 private:
  index_t num_rows_;
  index_t dim_;
  std::vector<index_t> unique_;
  std::vector<index_t> occurrence_;  // per batch position
  Matrix rows_;
  Matrix grads_;
  Matrix updated_;
};

struct ElRecRunStats {
  index_t batches = 0;
  double wall_seconds = 0.0;
  double final_loss = 0.0;
  std::vector<float> loss_curve;
  index_t rows_patched = 0;   // RAW repairs performed by the caches
  std::size_t cache_peak = 0;
  index_t checkpoints_written = 0;
  // Encoded bytes that crossed the queues this run, and the raw fp32 cost
  // of the same tensors (bytes-on-queue reduction = raw / encoded).
  std::uint64_t encoded_queue_bytes = 0;
  std::uint64_t raw_queue_bytes = 0;
};

class ElRecTrainer {
 public:
  ElRecTrainer(ElRecTrainerConfig config, const DatasetSpec& spec);

  /// Trains for `num_batches` batches of `batch_size`, streaming data from
  /// `data`, starting at `start_batch` (pass the value resume() returned,
  /// with `data` fast-forwarded past the already-trained batches, to
  /// continue an interrupted run). Pipelined when queue_capacity > 1,
  /// sequential otherwise. Throws PipelineError on any thread failure,
  /// after the shutdown protocol has quiesced the pipeline.
  ElRecRunStats train(SyntheticDataset& data, index_t num_batches,
                      index_t batch_size, index_t start_batch = 0);

  /// Loads the last durable checkpoint (model parameters + every host
  /// store) into this trainer and returns the batch id to pass to train()
  /// as start_batch. The trainer must be constructed with the same config.
  index_t resume(const std::string& path);

  DlrmModel& model() { return *model_; }
  HostEmbeddingStore& host_store(std::size_t i) { return *host_stores_[i]; }
  std::size_t num_host_tables() const { return host_stores_.size(); }
  std::size_t device_embedding_bytes() const;

 private:
  // One prefetched unit traveling through the queue. Tensor payloads cross
  // the queues encoded; the null codec makes the round trip bitwise-exact.
  struct Prefetched {
    index_t batch_id = 0;
    MiniBatch batch;
    std::vector<std::vector<index_t>> host_unique;  // per host table
    std::vector<EncodedBlob> host_rows;
  };
  struct GradUnit {
    index_t batch_id = 0;
    std::vector<std::vector<index_t>> indices;
    std::vector<EncodedBlob> grads;
  };

  /// Atomically persists model parameters + host stores + `next_batch`.
  void save_checkpoint(index_t next_batch);

  ElRecTrainerConfig config_;
  std::vector<std::size_t> host_slot_of_table_;  // table -> host index or npos
  std::vector<HostTableClient*> host_clients_;   // borrowed from model_
  std::vector<std::unique_ptr<HostEmbeddingStore>> host_stores_;
  std::unique_ptr<DlrmModel> model_;
};

}  // namespace elrec
