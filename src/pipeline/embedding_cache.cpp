#include "pipeline/embedding_cache.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace elrec {

namespace {

// Process-wide RAW-repair accounting: rows patched from the cache during
// sync, rows inserted after a batch's update, entries retired by life-cycle
// expiry. One registry entry shared by every EmbeddingCache instance.
struct CacheCounters {
  obs::Counter& patched;
  obs::Counter& inserted;
  obs::Counter& evicted;
};

CacheCounters& cache_counters() {
  auto& reg = obs::MetricsRegistry::global();
  static CacheCounters c{reg.counter("pipeline.cache.patched"),
                         reg.counter("pipeline.cache.inserted"),
                         reg.counter("pipeline.cache.evicted")};
  return c;
}

obs::Counter& cache_sync_bytes() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pipeline.bytes.cache_sync");
  return c;
}

}  // namespace

EmbeddingCache::EmbeddingCache(index_t dim, index_t lc_init,
                               const CodecConfig& codec)
    : dim_(dim), lc_init_(lc_init) {
  ELREC_CHECK(dim > 0, "cache dim must be positive");
  ELREC_CHECK(lc_init > 0, "life-cycle init must be positive");
  // A lossless codec round trip is the identity — skip it entirely so the
  // default cache stays byte-for-byte the pre-codec implementation.
  if (!codec.lossless()) codec_ = make_codec(codec);
}

index_t EmbeddingCache::sync(const std::vector<index_t>& indices,
                             Matrix& rows) const {
  ELREC_CHECK(rows.rows() == static_cast<index_t>(indices.size()) &&
                  rows.cols() == dim_,
              "rows shape mismatch in cache sync");
  index_t patched = 0;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto it = entries_.find(indices[i]);
    if (it == entries_.end()) continue;
    float* dst = rows.row(static_cast<index_t>(i));
    for (index_t j = 0; j < dim_; ++j) {
      dst[j] = it->second.value[static_cast<std::size_t>(j)];
    }
    ++patched;
  }
  cache_counters().patched.add(static_cast<std::uint64_t>(patched));
  return patched;
}

void EmbeddingCache::insert(const std::vector<index_t>& indices,
                            const Matrix& values, index_t batch_id) {
  ELREC_CHECK(values.rows() == static_cast<index_t>(indices.size()) &&
                  values.cols() == dim_,
              "values shape mismatch in cache insert");
  const Matrix* stored = &values;
  if (codec_) {
    // Hold the rows at codec precision: what a wire-format device cache
    // would return on sync.
    codec_->encode(values, blob_);
    cache_sync_bytes().add(blob_.size());
    decode_blob(blob_, roundtrip_);
    stored = &roundtrip_;
  }
  for (std::size_t i = 0; i < indices.size(); ++i) {
    Entry& e = entries_[indices[i]];
    e.value.assign(stored->row(static_cast<index_t>(i)),
                   stored->row(static_cast<index_t>(i)) + dim_);
    e.lc = lc_init_;  // refresh the life cycle on every write
    e.last_write_batch = batch_id;
  }
  peak_size_ = std::max(peak_size_, entries_.size());
  cache_counters().inserted.add(indices.size());
}

void EmbeddingCache::retire_batch(index_t applied_batch_id) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& e = it->second;
    // An entry's lives only start draining once the host store has absorbed
    // its write: a prefetch issued before that absorption read stale host
    // rows and may be consumed up to queue_capacity batches later, so the
    // entry must survive at least that long past the absorption point.
    if (e.last_write_batch <= applied_batch_id) e.lc -= 1;
    if (e.lc <= 0) {
      it = entries_.erase(it);
      cache_counters().evicted.inc();
    } else {
      ++it;
    }
  }
}

}  // namespace elrec
