// Ring all-reduce over in-process workers.
//
// EL-Rec trains TT tables and MLPs data-parallel across workers (paper
// Fig. 9 Step 2); the gradient all-reduce is the only inter-worker
// communication. This is a faithful ring implementation (2(W-1) steps of
// chunked reduce-scatter + all-gather) over shared memory, used by the
// multi-worker trainer and by tests; the sim module prices the same
// algorithm on NVLink/PCIe bandwidths.
#pragma once

#include <barrier>
#include <span>
#include <vector>

#include "codec/grad_codec.hpp"
#include "tensor/matrix.hpp"

namespace elrec {

/// Shared state for one all-reduce group of `num_workers` participants.
class RingAllReduce {
 public:
  explicit RingAllReduce(int num_workers);

  int num_workers() const { return num_workers_; }

  /// Collective: every worker calls this with its rank and its buffer (all
  /// buffers must have equal length). On return every buffer holds the
  /// element-wise MEAN of the inputs. Thread-safe for exactly one concurrent
  /// call per rank.
  void allreduce_mean(int rank, std::span<float> data);

  /// Collective, compressed variant: every worker encodes its buffer with
  /// its own `codec` instance, the blobs are exchanged, and every worker
  /// decodes ALL contributions in rank order and averages them — so the
  /// result is identical on every rank (replicas cannot drift apart) and
  /// only encoded bytes cross the "wire". Returns this rank's encoded
  /// payload size. Intended for lossy codecs; under a lossless codec the
  /// result matches allreduce_mean only up to float summation order.
  std::size_t allreduce_mean_compressed(int rank, std::span<float> data,
                                        IGradCodec& codec);

  /// Bytes a ring all-reduce moves per worker for a payload of n bytes:
  /// 2 * (W-1)/W * n (the sim module uses this too).
  static double ring_bytes_per_worker(double payload_bytes, int num_workers);

 private:
  int num_workers_;
  std::vector<std::span<float>> buffers_;
  std::vector<EncodedBlob> blobs_;  // one per rank, compressed collective
  std::barrier<> barrier_;
};

}  // namespace elrec
