// Generic pipelined parameter-server training loop (§V-A, Fig. 9/10a).
//
// A server thread pre-fetches embedding rows for upcoming batches from the
// HostEmbeddingStore into a bounded Pre-fetch Queue and drains a Gradient
// Queue back into the store, while the worker (caller thread) consumes
// prefetched batches, synchronizes them against the EmbeddingCache, runs a
// user-supplied compute step, and pushes gradients. The compute step is a
// callback so both unit tests (analytic gradients with a sequential oracle)
// and the full DLRM trainer reuse the same runtime.
//
// Fault tolerance: any thread failure runs the shutdown protocol — both
// queues close, the server is joined, in-flight gradients are drained into
// the store — and surfaces as a PipelineError naming the stage and batch.
// Transient host-store faults are retried with exponential backoff; an
// optional queue deadline converts a stalled peer into a diagnosed error
// instead of a deadlock; periodic crash-safe checkpoints enable resume().
#pragma once

#include <chrono>
#include <functional>
#include <string>

#include "codec/grad_codec.hpp"
#include "common/blocking_queue.hpp"
#include "common/retry.hpp"
#include "pipeline/embedding_cache.hpp"
#include "pipeline/host_embedding_store.hpp"
#include "pipeline/pipeline_error.hpp"

namespace elrec {

// Both queues carry encoded blobs, not raw matrices: every byte crossing a
// queue goes through the configured codec. Under the (default) null codec
// the blob is a raw fp32 payload, so the decoded tensors — and hence the
// whole run — are bitwise-identical to the pre-codec pipeline.
struct PrefetchedBatch {
  index_t batch_id = 0;
  std::vector<index_t> indices;  // unique rows of this batch
  EncodedBlob rows;              // encoded pulled parameters, row per index
};

struct GradientPush {
  index_t batch_id = 0;
  std::vector<index_t> indices;
  EncodedBlob grads;  // encoded aggregated per-unique-index gradients
};

struct PipelineConfig {
  index_t queue_capacity = 4;  // depth of both queues; 1 == sequential mode
  float lr = 0.05f;
  bool use_embedding_cache = true;  // off reproduces the RAW bug (Fig. 10a)

  // Bounded retry + backoff for transient host-store pull/push faults.
  RetryPolicy host_retry;

  // Deadline for each queue wait; 0 = wait forever. With a deadline set, a
  // stalled peer (e.g. a wedged server) yields a PipelineError instead of
  // blocking run() indefinitely.
  std::chrono::milliseconds queue_timeout{0};

  // Every n applied batches the server writes a crash-safe checkpoint of
  // the host store to checkpoint_path (0 = off).
  index_t checkpoint_every_n = 0;
  std::string checkpoint_path;

  // Codec applied to both queue streams (prefetched rows and pushed
  // gradients). The default null codec keeps the run bitwise-identical to
  // an uncompressed pipeline; checkpoints record the codec id and resume()
  // refuses a checkpoint written under a different codec.
  CodecConfig codec;
};

struct PipelineStats {
  index_t batches = 0;
  index_t rows_patched = 0;      // cache sync hits
  std::size_t cache_peak = 0;    // max cache entries (LC bound check)
  index_t checkpoints_written = 0;
  double worker_seconds = 0.0;
  double wall_seconds = 0.0;
  // Bytes that crossed the queues this run (encoded), and what the same
  // tensors would have cost raw — the bench's bytes-on-queue reduction.
  std::uint64_t encoded_queue_bytes = 0;
  std::uint64_t raw_queue_bytes = 0;
};

/// Computes per-unique-row gradients for one batch: given the (synchronized)
/// parameter rows, fill `grads` with dL/d(row).
using ComputeStep = std::function<void(index_t batch_id,
                                       const std::vector<index_t>& indices,
                                       const Matrix& rows, Matrix& grads)>;

class PipelineTrainer {
 public:
  PipelineTrainer(HostEmbeddingStore& store, PipelineConfig config);

  /// Runs the pipeline over `batches` (each a list of unique row indices),
  /// starting at `start_batch` (use the value resume() returned to continue
  /// an interrupted run). Blocks until every gradient has been applied to
  /// the host store. Throws PipelineError on any thread failure, after the
  /// shutdown protocol has quiesced the pipeline.
  PipelineStats run(const std::vector<std::vector<index_t>>& batches,
                    const ComputeStep& compute, index_t start_batch = 0);

  /// Loads the last durable checkpoint into the host store and returns the
  /// batch id to pass to run() as start_batch. Replaying from there yields
  /// final parameters bitwise-identical to an uninterrupted run.
  index_t resume(const std::string& path);

 private:
  HostEmbeddingStore& store_;
  PipelineConfig config_;
};

}  // namespace elrec
