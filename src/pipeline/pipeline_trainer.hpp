// Generic pipelined parameter-server training loop (§V-A, Fig. 9/10a).
//
// A server thread pre-fetches embedding rows for upcoming batches from the
// HostEmbeddingStore into a bounded Pre-fetch Queue and drains a Gradient
// Queue back into the store, while the worker (caller thread) consumes
// prefetched batches, synchronizes them against the EmbeddingCache, runs a
// user-supplied compute step, and pushes gradients. The compute step is a
// callback so both unit tests (analytic gradients with a sequential oracle)
// and the full DLRM trainer reuse the same runtime.
#pragma once

#include <functional>

#include "common/blocking_queue.hpp"
#include "pipeline/embedding_cache.hpp"
#include "pipeline/host_embedding_store.hpp"

namespace elrec {

struct PrefetchedBatch {
  index_t batch_id = 0;
  std::vector<index_t> indices;  // unique rows of this batch
  Matrix rows;                   // pulled parameters, one row per index
};

struct GradientPush {
  index_t batch_id = 0;
  std::vector<index_t> indices;
  Matrix grads;  // aggregated per-unique-index gradients
};

struct PipelineConfig {
  index_t queue_capacity = 4;  // depth of both queues; 1 == sequential mode
  float lr = 0.05f;
  bool use_embedding_cache = true;  // off reproduces the RAW bug (Fig. 10a)
};

struct PipelineStats {
  index_t batches = 0;
  index_t rows_patched = 0;      // cache sync hits
  std::size_t cache_peak = 0;    // max cache entries (LC bound check)
  double worker_seconds = 0.0;
  double wall_seconds = 0.0;
};

/// Computes per-unique-row gradients for one batch: given the (synchronized)
/// parameter rows, fill `grads` with dL/d(row).
using ComputeStep = std::function<void(index_t batch_id,
                                       const std::vector<index_t>& indices,
                                       const Matrix& rows, Matrix& grads)>;

class PipelineTrainer {
 public:
  PipelineTrainer(HostEmbeddingStore& store, PipelineConfig config);

  /// Runs the pipeline over `batches` (each a list of unique row indices).
  /// Blocks until every gradient has been applied to the host store.
  PipelineStats run(const std::vector<std::vector<index_t>>& batches,
                    const ComputeStep& compute);

 private:
  HostEmbeddingStore& store_;
  PipelineConfig config_;
};

}  // namespace elrec
