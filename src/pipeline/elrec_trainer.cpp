#include "pipeline/elrec_trainer.hpp"

#include <atomic>
#include <thread>

#include "common/blocking_queue.hpp"
#include "common/stopwatch.hpp"
#include "embed/embedding_bag.hpp"

namespace elrec {

std::vector<TablePlacement> default_placement(const DatasetSpec& spec,
                                              index_t tt_threshold,
                                              index_t host_threshold) {
  std::vector<TablePlacement> placement;
  placement.reserve(spec.table_rows.size());
  for (index_t rows : spec.table_rows) {
    if (rows >= host_threshold) {
      placement.push_back(TablePlacement::kHost);
    } else if (rows >= tt_threshold) {
      placement.push_back(TablePlacement::kDeviceTT);
    } else {
      placement.push_back(TablePlacement::kDeviceDense);
    }
  }
  return placement;
}

void HostTableClient::install(std::vector<index_t> unique, Matrix rows) {
  ELREC_CHECK(rows.rows() == static_cast<index_t>(unique.size()) &&
                  rows.cols() == dim_,
              "installed rows shape mismatch");
  unique_ = std::move(unique);
  rows_ = std::move(rows);
}

void HostTableClient::forward(const IndexBatch& batch, Matrix& out) {
  batch.validate(num_rows_);
  // Map batch positions onto the installed unique rows.
  occurrence_.resize(batch.indices.size());
  for (std::size_t i = 0; i < batch.indices.size(); ++i) {
    const auto it =
        std::lower_bound(unique_.begin(), unique_.end(), batch.indices[i]);
    ELREC_CHECK(it != unique_.end() && *it == batch.indices[i],
                "batch index missing from installed prefetch rows");
    occurrence_[i] = static_cast<index_t>(it - unique_.begin());
  }
  const index_t b = batch.batch_size();
  out.resize(b, dim_);
  for (index_t s = 0; s < b; ++s) {
    float* dst = out.row(s);
    for (index_t p = batch.bag_begin(s); p < batch.bag_end(s); ++p) {
      const float* src = rows_.row(occurrence_[static_cast<std::size_t>(p)]);
      for (index_t j = 0; j < dim_; ++j) dst[j] += src[j];
    }
  }
}

void HostTableClient::backward_and_update(const IndexBatch& batch,
                                          const Matrix& grad_out, float lr) {
  ELREC_CHECK(grad_out.rows() == batch.batch_size() && grad_out.cols() == dim_,
              "grad_out shape mismatch");
  grads_.resize(static_cast<index_t>(unique_.size()), dim_);
  grads_.set_zero();
  for (index_t s = 0; s < batch.batch_size(); ++s) {
    const float* g = grad_out.row(s);
    for (index_t p = batch.bag_begin(s); p < batch.bag_end(s); ++p) {
      float* dst = grads_.row(occurrence_[static_cast<std::size_t>(p)]);
      for (index_t j = 0; j < dim_; ++j) dst[j] += g[j];
    }
  }
  // Worker-side view of the post-update rows (for the embedding cache).
  updated_.resize(rows_.rows(), rows_.cols());
  for (index_t i = 0; i < rows_.rows(); ++i) {
    const float* r = rows_.row(i);
    const float* g = grads_.row(i);
    float* u = updated_.row(i);
    for (index_t j = 0; j < dim_; ++j) u[j] = r[j] - lr * g[j];
  }
}

ElRecTrainer::ElRecTrainer(ElRecTrainerConfig config, const DatasetSpec& spec)
    : config_(std::move(config)) {
  ELREC_CHECK(config_.placement.size() == spec.table_rows.size(),
              "one placement per table required");
  Prng rng(config_.seed);

  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  constexpr auto npos = static_cast<std::size_t>(-1);
  host_slot_of_table_.assign(spec.table_rows.size(), npos);
  const index_t dim = config_.model.embedding_dim;

  for (std::size_t t = 0; t < spec.table_rows.size(); ++t) {
    const index_t rows = spec.table_rows[t];
    switch (config_.placement[t]) {
      case TablePlacement::kDeviceDense:
        tables.push_back(std::make_unique<EmbeddingBag>(rows, dim, rng));
        break;
      case TablePlacement::kDeviceTT: {
        const TTShape shape = TTShape::balanced(rows, dim, 3, config_.tt_rank);
        tables.push_back(std::make_unique<EffTTTable>(rows, shape, rng));
        break;
      }
      case TablePlacement::kHost: {
        host_slot_of_table_[t] = host_stores_.size();
        host_stores_.push_back(
            std::make_unique<HostEmbeddingStore>(rows, dim, rng));
        auto client = std::make_unique<HostTableClient>(rows, dim);
        host_clients_.push_back(client.get());
        tables.push_back(std::move(client));
        break;
      }
    }
  }
  model_ = std::make_unique<DlrmModel>(config_.model, std::move(tables), rng);
}

std::size_t ElRecTrainer::device_embedding_bytes() const {
  return model_->embedding_bytes();  // HostTableClient reports 0
}

ElRecRunStats ElRecTrainer::train(SyntheticDataset& data, index_t num_batches,
                                  index_t batch_size) {
  ElRecRunStats stats;
  const auto capacity = static_cast<std::size_t>(config_.queue_capacity);
  BlockingQueue<Prefetched> prefetch_queue(capacity);
  BlockingQueue<GradUnit> gradient_queue(capacity);
  std::atomic<index_t> applied_batch_id{-1};

  const std::size_t num_host = host_stores_.size();
  Stopwatch wall;

  // ---- Server thread: data loading + parameter service ---------------
  std::thread server([&] {
    index_t prefetched = 0;
    index_t applied = 0;
    while (applied < num_batches) {
      while (auto push = gradient_queue.try_pop()) {
        for (std::size_t h = 0; h < num_host; ++h) {
          host_stores_[h]->apply_gradients(push->indices[h], push->grads[h],
                                           config_.lr);
        }
        applied_batch_id.store(push->batch_id, std::memory_order_release);
        ++applied;
      }
      if (prefetched < num_batches) {
        Prefetched pf;
        pf.batch_id = prefetched;
        pf.batch = data.next_batch(batch_size);
        pf.host_unique.resize(num_host);
        pf.host_rows.resize(num_host);
        for (std::size_t t = 0; t < host_slot_of_table_.size(); ++t) {
          const std::size_t h = host_slot_of_table_[t];
          if (h == static_cast<std::size_t>(-1)) continue;
          const auto umap = build_unique_index_map(pf.batch.sparse[t].indices);
          pf.host_unique[h] = umap.unique;
          host_stores_[h]->pull(pf.host_unique[h], pf.host_rows[h]);
        }
        ++prefetched;
        if (!prefetch_queue.push(std::move(pf))) return;
      } else if (applied < num_batches) {
        auto push = gradient_queue.pop();
        if (!push) return;
        for (std::size_t h = 0; h < num_host; ++h) {
          host_stores_[h]->apply_gradients(push->indices[h], push->grads[h],
                                           config_.lr);
        }
        applied_batch_id.store(push->batch_id, std::memory_order_release);
        ++applied;
      }
    }
    prefetch_queue.close();
  });

  // ---- Worker: DLRM forward/backward ---------------------------------
  std::vector<EmbeddingCache> caches;
  caches.reserve(num_host);
  for (std::size_t h = 0; h < num_host; ++h) {
    caches.emplace_back(config_.model.embedding_dim,
                        config_.queue_capacity + 1);
  }

  for (index_t b = 0; b < num_batches; ++b) {
    auto pf = prefetch_queue.pop();
    ELREC_CHECK(pf.has_value(), "prefetch queue closed early");

    // Step 1: synchronize prefetched host rows against the caches.
    for (std::size_t h = 0; h < num_host; ++h) {
      if (config_.use_embedding_cache) {
        stats.rows_patched += caches[h].sync(pf->host_unique[h], pf->host_rows[h]);
      }
      host_clients_[h]->install(pf->host_unique[h],
                                std::move(pf->host_rows[h]));
    }

    // Device-side forward/backward; device tables (dense + Eff-TT) update in
    // place, host clients capture gradients.
    const float loss = model_->train_step(pf->batch, config_.lr);
    stats.loss_curve.push_back(loss);
    stats.final_loss = loss;

    // Step 3: push host-table gradients; refresh the caches.
    GradUnit push;
    push.batch_id = pf->batch_id;
    push.indices.resize(num_host);
    push.grads.resize(num_host);
    for (std::size_t h = 0; h < num_host; ++h) {
      push.indices[h] = host_clients_[h]->captured_indices();
      push.grads[h] = host_clients_[h]->captured_grads();
      if (config_.use_embedding_cache) {
        caches[h].insert(push.indices[h], host_clients_[h]->updated_rows(),
                         pf->batch_id);
        caches[h].retire_batch(
            applied_batch_id.load(std::memory_order_acquire));
      }
    }
    gradient_queue.push(std::move(push));
    ++stats.batches;
  }
  server.join();

  for (auto& cache : caches) {
    stats.cache_peak = std::max(stats.cache_peak, cache.peak_size());
  }
  stats.wall_seconds = wall.seconds();
  return stats;
}

}  // namespace elrec
