#include "pipeline/elrec_trainer.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include <cstring>

#include "common/blocking_queue.hpp"
#include "common/fault_injector.hpp"
#include "common/serialize.hpp"
#include "common/stopwatch.hpp"
#include "embed/embedding_bag.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace elrec {

namespace {

constexpr char kCheckpointTag[4] = {'E', 'L', 'C', '1'};     // null codec
constexpr char kCheckpointTagV2[4] = {'E', 'L', 'C', '2'};   // + u32 codec id

// Same registry entries as PipelineTrainer: the counters are process-wide
// and name the stream, not the trainer.
struct ElrecByteCounters {
  obs::Counter& grad_push;
  obs::Counter& host_push;
  obs::Counter& host_pull;
};

ElrecByteCounters& elrec_byte_counters() {
  auto& reg = obs::MetricsRegistry::global();
  static ElrecByteCounters c{reg.counter("pipeline.bytes.grad_push"),
                             reg.counter("pipeline.bytes.host_push"),
                             reg.counter("pipeline.bytes.host_pull")};
  return c;
}

std::string describe_exception(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

std::vector<TablePlacement> default_placement(const DatasetSpec& spec,
                                              index_t tt_threshold,
                                              index_t host_threshold) {
  std::vector<TablePlacement> placement;
  placement.reserve(spec.table_rows.size());
  for (index_t rows : spec.table_rows) {
    if (rows >= host_threshold) {
      placement.push_back(TablePlacement::kHost);
    } else if (rows >= tt_threshold) {
      placement.push_back(TablePlacement::kDeviceTT);
    } else {
      placement.push_back(TablePlacement::kDeviceDense);
    }
  }
  return placement;
}

void HostTableClient::install(std::vector<index_t> unique, Matrix rows) {
  ELREC_CHECK(rows.rows() == static_cast<index_t>(unique.size()) &&
                  rows.cols() == dim_,
              "installed rows shape mismatch");
  unique_ = std::move(unique);
  rows_ = std::move(rows);
}

void HostTableClient::forward(const IndexBatch& batch, Matrix& out) {
  batch.validate(num_rows_);
  // Map batch positions onto the installed unique rows.
  occurrence_.resize(batch.indices.size());
  for (std::size_t i = 0; i < batch.indices.size(); ++i) {
    const auto it =
        std::lower_bound(unique_.begin(), unique_.end(), batch.indices[i]);
    ELREC_CHECK(it != unique_.end() && *it == batch.indices[i],
                "batch index missing from installed prefetch rows");
    occurrence_[i] = static_cast<index_t>(it - unique_.begin());
  }
  const index_t b = batch.batch_size();
  out.resize(b, dim_);
  for (index_t s = 0; s < b; ++s) {
    float* dst = out.row(s);
    for (index_t p = batch.bag_begin(s); p < batch.bag_end(s); ++p) {
      const float* src = rows_.row(occurrence_[static_cast<std::size_t>(p)]);
      for (index_t j = 0; j < dim_; ++j) dst[j] += src[j];
    }
  }
}

void HostTableClient::backward_and_update(const IndexBatch& batch,
                                          const Matrix& grad_out, float lr) {
  ELREC_CHECK(grad_out.rows() == batch.batch_size() && grad_out.cols() == dim_,
              "grad_out shape mismatch");
  grads_.resize(static_cast<index_t>(unique_.size()), dim_);
  grads_.set_zero();
  for (index_t s = 0; s < batch.batch_size(); ++s) {
    const float* g = grad_out.row(s);
    for (index_t p = batch.bag_begin(s); p < batch.bag_end(s); ++p) {
      float* dst = grads_.row(occurrence_[static_cast<std::size_t>(p)]);
      for (index_t j = 0; j < dim_; ++j) dst[j] += g[j];
    }
  }
  // Worker-side view of the post-update rows (for the embedding cache).
  apply_decoded_update(grads_, lr);
}

void HostTableClient::apply_decoded_update(const Matrix& grads, float lr) {
  ELREC_CHECK(grads.rows() == rows_.rows() && grads.cols() == rows_.cols(),
              "decoded gradient shape mismatch");
  updated_.resize(rows_.rows(), rows_.cols());
  for (index_t i = 0; i < rows_.rows(); ++i) {
    const float* r = rows_.row(i);
    const float* g = grads.row(i);
    float* u = updated_.row(i);
    for (index_t j = 0; j < dim_; ++j) u[j] = r[j] - lr * g[j];
  }
}

ElRecTrainer::ElRecTrainer(ElRecTrainerConfig config, const DatasetSpec& spec)
    : config_(std::move(config)) {
  ELREC_CHECK(config_.placement.size() == spec.table_rows.size(),
              "one placement per table required");
  Prng rng(config_.seed);

  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  constexpr auto npos = static_cast<std::size_t>(-1);
  host_slot_of_table_.assign(spec.table_rows.size(), npos);
  const index_t dim = config_.model.embedding_dim;

  for (std::size_t t = 0; t < spec.table_rows.size(); ++t) {
    const index_t rows = spec.table_rows[t];
    switch (config_.placement[t]) {
      case TablePlacement::kDeviceDense:
        tables.push_back(std::make_unique<EmbeddingBag>(rows, dim, rng));
        break;
      case TablePlacement::kDeviceTT: {
        const TTShape shape = TTShape::balanced(rows, dim, 3, config_.tt_rank);
        tables.push_back(std::make_unique<EffTTTable>(rows, shape, rng));
        break;
      }
      case TablePlacement::kHost: {
        host_slot_of_table_[t] = host_stores_.size();
        host_stores_.push_back(
            std::make_unique<HostEmbeddingStore>(rows, dim, rng));
        auto client = std::make_unique<HostTableClient>(rows, dim);
        host_clients_.push_back(client.get());
        tables.push_back(std::move(client));
        break;
      }
    }
  }
  model_ = std::make_unique<DlrmModel>(config_.model, std::move(tables), rng);
}

std::size_t ElRecTrainer::device_embedding_bytes() const {
  return model_->embedding_bytes();  // HostTableClient reports 0
}

void ElRecTrainer::save_checkpoint(index_t next_batch) {
  write_checkpoint_atomic(config_.checkpoint_path, [&](BinaryWriter& w) {
    if (config_.codec.id == CodecId::kNull) {
      w.write_tag(kCheckpointTag);  // legacy byte-identical format
    } else {
      w.write_tag(kCheckpointTagV2);
      w.write_pod(static_cast<std::uint32_t>(config_.codec.id));
    }
    w.write_i64(next_batch);
    std::uint64_t count = 0;
    model_->visit_parameters([&](float*, std::size_t) { ++count; });
    w.write_u64(count);
    model_->visit_parameters(
        [&](float* p, std::size_t n) { w.write_array(p, n); });
    w.write_u64(host_stores_.size());
    for (const auto& store : host_stores_) {
      w.write_i64(store->num_rows());
      w.write_i64(store->dim());
      w.write_array(store->weights().data(),
                    static_cast<std::size_t>(store->weights().size()));
    }
  });
}

index_t ElRecTrainer::resume(const std::string& path) {
  BinaryReader r(path);
  char tag[4];
  for (char& c : tag) c = r.read_pod<char>();
  CodecId saved = CodecId::kNull;
  if (std::memcmp(tag, kCheckpointTagV2, 4) == 0) {
    saved = static_cast<CodecId>(r.read_pod<std::uint32_t>());
  } else {
    ELREC_CHECK(std::memcmp(tag, kCheckpointTag, 4) == 0,
                "unrecognized trainer checkpoint tag");
  }
  if (saved != config_.codec.id) {
    throw PipelineError(
        "resume", -1,
        "checkpoint '" + path + "' was written under codec '" +
            codec_name(saved) + "' but this trainer uses '" +
            codec_name(config_.codec.id) + "' — refusing to resume across "
            "codecs");
  }
  const index_t next_batch = r.read_i64();
  std::uint64_t count = 0;
  model_->visit_parameters([&](float*, std::size_t) { ++count; });
  const std::uint64_t stored = r.read_u64();
  ELREC_CHECK(stored == count,
              "checkpoint buffer count mismatch — different trainer config");
  model_->visit_parameters([&](float* p, std::size_t n) {
    const auto values = r.read_vector<float>();
    ELREC_CHECK(values.size() == n, "checkpoint buffer size mismatch");
    std::copy(values.begin(), values.end(), p);
  });
  const std::uint64_t num_host = r.read_u64();
  ELREC_CHECK(num_host == host_stores_.size(),
              "checkpoint host-store count mismatch");
  for (auto& store : host_stores_) {
    const index_t rows = r.read_i64();
    const index_t dim = r.read_i64();
    ELREC_CHECK(rows == store->num_rows() && dim == store->dim(),
                "checkpoint host-store shape mismatch");
    const auto values = r.read_vector<float>();
    ELREC_CHECK(static_cast<index_t>(values.size()) == rows * dim,
                "checkpoint host-store payload size mismatch");
    Matrix weights(rows, dim);
    std::copy(values.begin(), values.end(), weights.data());
    store->load_weights(weights);
  }
  r.expect_footer();
  return next_batch;
}

ElRecRunStats ElRecTrainer::train(SyntheticDataset& data, index_t num_batches,
                                  index_t batch_size, index_t start_batch) {
  ELREC_CHECK(start_batch >= 0 && start_batch <= num_batches,
              "start_batch out of range");
  ELREC_CHECK(config_.checkpoint_every_n == 0 ||
                  !config_.checkpoint_path.empty(),
              "checkpoint_every_n requires a checkpoint_path");
  ElRecRunStats stats;
  const auto capacity = static_cast<std::size_t>(config_.queue_capacity);
  BlockingQueue<Prefetched> prefetch_queue(capacity);
  BlockingQueue<GradUnit> gradient_queue(capacity);
  std::atomic<index_t> applied_batch_id{-1};

  // Set by the server before it closes the queues on failure; the queue
  // mutex orders the write against the worker observing the close.
  struct ThreadFailure {
    std::exception_ptr error;
    index_t batch_id = -1;
  };
  ThreadFailure server_failure;

  const std::size_t num_host = host_stores_.size();
  Stopwatch wall;

  // Queue traffic accounting, merged into stats after the threads join.
  std::atomic<std::uint64_t> encoded_bytes{0};
  std::atomic<std::uint64_t> raw_bytes{0};
  auto count_stream = [&](obs::Counter& counter, const EncodedBlob& blob,
                          std::uint64_t raw) {
    counter.add(blob.size());
    encoded_bytes.fetch_add(blob.size(), std::memory_order_relaxed);
    raw_bytes.fetch_add(raw, std::memory_order_relaxed);
  };

  // ---- Server thread: data loading + parameter service ---------------
  std::thread server([&] {
    index_t current_batch = -1;
    try {
      index_t prefetched = start_batch;
      index_t applied = start_batch;
      // One codec instance per host-table pull stream (encode is stateful;
      // each table's parameter scale adapts its own bound).
      std::vector<std::unique_ptr<IGradCodec>> pull_codecs;
      for (std::size_t h = 0; h < num_host; ++h) {
        pull_codecs.push_back(make_codec(config_.codec));
      }
      Matrix pulled;
      Matrix decoded_grads;

      auto apply = [&](GradUnit& push) {
        current_batch = push.batch_id;
        TRACE_SPAN("elrec.host_push");
        for (std::size_t h = 0; h < num_host; ++h) {
          count_stream(elrec_byte_counters().host_push, push.grads[h],
                       push.indices[h].size() *
                           static_cast<std::uint64_t>(host_stores_[h]->dim()) *
                           sizeof(float));
          decode_blob(push.grads[h], decoded_grads);
          with_retry(config_.host_retry, "host-store push", [&] {
            host_stores_[h]->apply_gradients(push.indices[h], decoded_grads,
                                             config_.lr);
          });
        }
        applied_batch_id.store(push.batch_id, std::memory_order_release);
        ++applied;
      };

      while (applied < num_batches) {
        ELREC_FAULT_POINT("pipeline.server_tick");
        while (auto push = gradient_queue.try_pop()) apply(*push);
        if (prefetched < num_batches) {
          current_batch = prefetched;
          Prefetched pf;
          pf.batch_id = prefetched;
          {
            TRACE_SPAN("elrec.host_pull");
            pf.batch = data.next_batch(batch_size);
            pf.host_unique.resize(num_host);
            pf.host_rows.resize(num_host);
            for (std::size_t t = 0; t < host_slot_of_table_.size(); ++t) {
              const std::size_t h = host_slot_of_table_[t];
              if (h == static_cast<std::size_t>(-1)) continue;
              const auto umap =
                  build_unique_index_map(pf.batch.sparse[t].indices);
              pf.host_unique[h] = umap.unique;
              with_retry(config_.host_retry, "host-store pull", [&] {
                host_stores_[h]->pull(pf.host_unique[h], pulled);
              });
              pull_codecs[h]->encode(pulled, pf.host_rows[h]);
              count_stream(
                  elrec_byte_counters().host_pull, pf.host_rows[h],
                  static_cast<std::uint64_t>(pulled.size()) * sizeof(float));
            }
          }
          ++prefetched;
          // Bounded push with gradient drains in between: a worker stalled
          // at its checkpoint barrier (waiting for gradients to be applied)
          // must not deadlock against a full prefetch queue.
          for (;;) {
            const QueueOpStatus st =
                prefetch_queue.try_push_for(pf, std::chrono::milliseconds(5));
            if (st == QueueOpStatus::kClosed) return;
            if (st == QueueOpStatus::kOk) break;
            while (auto push = gradient_queue.try_pop()) apply(*push);
          }
        } else if (applied < num_batches) {
          auto push = gradient_queue.pop();
          if (!push) return;
          apply(*push);
        }
      }
      prefetch_queue.close();
    } catch (...) {
      server_failure.error = std::current_exception();
      server_failure.batch_id = current_batch;
      prefetch_queue.close();
      gradient_queue.close();
    }
  });

  // Shutdown protocol: close both queues, join the server, then drain any
  // in-flight gradients into the stores so every successfully computed
  // batch is durable. Safe to call on every exit path.
  auto quiesce = [&] {
    prefetch_queue.close();
    gradient_queue.close();
    if (server.joinable()) server.join();
    Matrix drained;
    while (auto push = gradient_queue.try_pop()) {
      try {
        for (std::size_t h = 0; h < num_host; ++h) {
          decode_blob(push->grads[h], drained);
          with_retry(config_.host_retry, "host-store push (drain)", [&] {
            host_stores_[h]->apply_gradients(push->indices[h], drained,
                                             config_.lr);
          });
        }
      } catch (...) {
        break;  // store unusable; the remaining gradients are lost anyway
      }
    }
  };

  auto raise = [&](const char* stage, index_t batch_id,
                   const std::exception_ptr& cause) {
    quiesce();
    if (server_failure.error && cause != server_failure.error) {
      throw PipelineError("server", server_failure.batch_id,
                          describe_exception(server_failure.error));
    }
    throw PipelineError(stage, batch_id, describe_exception(cause));
  };

  // Blocks until the server has absorbed every gradient up to and including
  // `b` — the quiescent point a consistent checkpoint needs (the worker is
  // the only gradient producer, so nothing new arrives while we wait).
  auto wait_until_applied = [&](index_t b) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (applied_batch_id.load(std::memory_order_acquire) < b) {
      ELREC_CHECK(!gradient_queue.closed(), "server died before checkpoint");
      ELREC_CHECK(std::chrono::steady_clock::now() < deadline,
                  "timed out waiting for gradient absorption at checkpoint");
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  };

  // ---- Worker: DLRM forward/backward ---------------------------------
  std::vector<EmbeddingCache> caches;
  caches.reserve(num_host);
  for (std::size_t h = 0; h < num_host; ++h) {
    caches.emplace_back(config_.model.embedding_dim,
                        config_.queue_capacity + 1, config_.codec);
  }
  // One codec instance per host-table gradient stream, plus scratch for
  // the decode sides.
  std::vector<std::unique_ptr<IGradCodec>> grad_codecs;
  for (std::size_t h = 0; h < num_host; ++h) {
    grad_codecs.push_back(make_codec(config_.codec));
  }
  const bool lossless = config_.codec.lossless();
  Matrix decoded_rows;
  Matrix grads_seen_by_host;

  for (index_t b = start_batch; b < num_batches; ++b) {
    Prefetched pf;
    TRACE_SPAN("elrec.batch");
    {
      TRACE_SPAN("elrec.prefetch_wait");
      if (config_.queue_timeout.count() > 0) {
        const QueueOpStatus st =
            prefetch_queue.try_pop_for(pf, config_.queue_timeout);
        if (st == QueueOpStatus::kTimeout) {
          raise("worker", b,
                std::make_exception_ptr(Error(
                    "timed out waiting for a prefetched batch — server "
                    "stalled?")));
        }
        if (st == QueueOpStatus::kClosed) {
          raise("worker", b,
                std::make_exception_ptr(Error("prefetch queue closed early")));
        }
      } else {
        auto popped = prefetch_queue.pop();
        if (!popped) {
          raise("worker", b,
                std::make_exception_ptr(Error("prefetch queue closed early")));
        }
        pf = std::move(*popped);
      }
    }

    GradUnit push;
    try {
      // Step 1: decode the prefetched host rows and synchronize them
      // against the caches.
      {
        TRACE_SPAN("elrec.cache_sync");
        for (std::size_t h = 0; h < num_host; ++h) {
          decode_blob(pf.host_rows[h], decoded_rows);
          if (config_.use_embedding_cache) {
            stats.rows_patched +=
                caches[h].sync(pf.host_unique[h], decoded_rows);
          }
          host_clients_[h]->install(pf.host_unique[h],
                                    std::move(decoded_rows));
        }
      }

      // Device-side forward/backward; device tables (dense + Eff-TT) update
      // in place, host clients capture gradients.
      {
        TRACE_SPAN("elrec.compute");
        ELREC_FAULT_POINT("elrec.compute");
        const float loss = model_->train_step(pf.batch, config_.lr);
        stats.loss_curve.push_back(loss);
        stats.final_loss = loss;
      }

      // Step 3: encode and push host-table gradients; refresh the caches
      // with the update the host will actually apply (the codec round trip
      // of the gradients, when lossy).
      TRACE_SPAN("elrec.cache_update");
      push.batch_id = pf.batch_id;
      push.indices.resize(num_host);
      push.grads.resize(num_host);
      for (std::size_t h = 0; h < num_host; ++h) {
        push.indices[h] = host_clients_[h]->captured_indices();
        grad_codecs[h]->encode(host_clients_[h]->captured_grads(),
                               push.grads[h]);
        count_stream(elrec_byte_counters().grad_push, push.grads[h],
                     static_cast<std::uint64_t>(
                         host_clients_[h]->captured_grads().size()) *
                         sizeof(float));
        if (config_.use_embedding_cache) {
          if (!lossless) {
            decode_blob(push.grads[h], grads_seen_by_host);
            host_clients_[h]->apply_decoded_update(grads_seen_by_host,
                                                   config_.lr);
          }
          caches[h].insert(push.indices[h], host_clients_[h]->updated_rows(),
                           pf.batch_id);
          caches[h].retire_batch(
              applied_batch_id.load(std::memory_order_acquire));
        }
      }
    } catch (...) {
      raise("worker", pf.batch_id, std::current_exception());
    }

    {
      TRACE_SPAN("elrec.grad_push");
      if (config_.queue_timeout.count() > 0) {
        const QueueOpStatus st =
            gradient_queue.try_push_for(push, config_.queue_timeout);
        if (st == QueueOpStatus::kTimeout) {
          raise("worker", pf.batch_id,
                std::make_exception_ptr(
                    Error("timed out pushing gradients — server stalled?")));
        }
        if (st == QueueOpStatus::kClosed) {
          raise("worker", pf.batch_id,
                std::make_exception_ptr(Error("gradient queue closed early")));
        }
      } else if (!gradient_queue.push(std::move(push))) {
        raise("worker", pf.batch_id,
              std::make_exception_ptr(Error("gradient queue closed early")));
      }
    }
    ++stats.batches;

    if (config_.checkpoint_every_n > 0 &&
        (b + 1) % config_.checkpoint_every_n == 0) {
      try {
        TRACE_SPAN("elrec.checkpoint");
        wait_until_applied(b);
        save_checkpoint(b + 1);
        ++stats.checkpoints_written;
      } catch (...) {
        raise("checkpoint", b, std::current_exception());
      }
    }
  }
  server.join();
  if (server_failure.error) {
    raise("server", server_failure.batch_id, server_failure.error);
  }

  for (auto& cache : caches) {
    stats.cache_peak = std::max(stats.cache_peak, cache.peak_size());
  }
  stats.wall_seconds = wall.seconds();
  stats.encoded_queue_bytes = encoded_bytes.load(std::memory_order_relaxed);
  stats.raw_queue_bytes = raw_bytes.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace elrec
