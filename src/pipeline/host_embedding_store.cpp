#include "pipeline/host_embedding_store.hpp"

#include "common/error.hpp"

namespace elrec {

HostEmbeddingStore::HostEmbeddingStore(index_t num_rows, index_t dim,
                                       Prng& rng, float init_std) {
  ELREC_CHECK(num_rows > 0 && dim > 0, "store must be non-empty");
  weights_.resize(num_rows, dim);
  if (init_std > 0.0f) weights_.fill_normal(rng, 0.0f, init_std);
}

void HostEmbeddingStore::pull(const std::vector<index_t>& indices,
                              Matrix& rows) const {
  std::lock_guard lock(mu_);
  rows.resize(static_cast<index_t>(indices.size()), weights_.cols());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const index_t idx = indices[i];
    ELREC_CHECK(idx >= 0 && idx < weights_.rows(), "pull index out of range");
    const float* src = weights_.row(idx);
    float* dst = rows.row(static_cast<index_t>(i));
    for (index_t j = 0; j < weights_.cols(); ++j) dst[j] = src[j];
  }
}

void HostEmbeddingStore::apply_gradients(const std::vector<index_t>& indices,
                                         const Matrix& grads, float lr) {
  ELREC_CHECK(grads.rows() == static_cast<index_t>(indices.size()) &&
                  grads.cols() == weights_.cols(),
              "gradient shape mismatch");
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    float* dst = weights_.row(indices[i]);
    const float* g = grads.row(static_cast<index_t>(i));
    for (index_t j = 0; j < weights_.cols(); ++j) dst[j] -= lr * g[j];
  }
}

std::vector<float> HostEmbeddingStore::row_copy(index_t row) const {
  std::lock_guard lock(mu_);
  const float* src = weights_.row(row);
  return std::vector<float>(src, src + weights_.cols());
}

}  // namespace elrec
