#include "pipeline/host_embedding_store.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/fault_injector.hpp"

namespace elrec {

HostEmbeddingStore::HostEmbeddingStore(index_t num_rows, index_t dim,
                                       Prng& rng, float init_std) {
  ELREC_CHECK(num_rows > 0 && dim > 0, "store must be non-empty");
  weights_.resize(num_rows, dim);
  if (init_std > 0.0f) weights_.fill_normal(rng, 0.0f, init_std);
}

void HostEmbeddingStore::pull(const std::vector<index_t>& indices,
                              Matrix& rows) const {
  ELREC_FAULT_POINT("host_store.pull");
  std::lock_guard lock(mu_);
  rows.resize(static_cast<index_t>(indices.size()), weights_.cols());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const index_t idx = indices[i];
    ELREC_CHECK(idx >= 0 && idx < weights_.rows(), "pull index out of range");
    const float* src = weights_.row(idx);
    float* dst = rows.row(static_cast<index_t>(i));
    for (index_t j = 0; j < weights_.cols(); ++j) dst[j] = src[j];
  }
}

void HostEmbeddingStore::apply_gradients(const std::vector<index_t>& indices,
                                         const Matrix& grads, float lr) {
  ELREC_CHECK(grads.rows() == static_cast<index_t>(indices.size()) &&
                  grads.cols() == weights_.cols(),
              "gradient shape mismatch");
  ELREC_FAULT_POINT("host_store.push");
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    float* dst = weights_.row(indices[i]);
    const float* g = grads.row(static_cast<index_t>(i));
    for (index_t j = 0; j < weights_.cols(); ++j) dst[j] -= lr * g[j];
  }
}

void HostEmbeddingStore::load_weights(const Matrix& weights) {
  std::lock_guard lock(mu_);
  ELREC_CHECK(weights.rows() == weights_.rows() &&
                  weights.cols() == weights_.cols(),
              "loaded weights shape mismatch");
  std::copy(weights.data(), weights.data() + weights.size(), weights_.data());
}

std::vector<float> HostEmbeddingStore::row_copy(index_t row) const {
  std::lock_guard lock(mu_);
  const float* src = weights_.row(row);
  return std::vector<float>(src, src + weights_.cols());
}

}  // namespace elrec
