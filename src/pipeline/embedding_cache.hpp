// Device-side embedding cache resolving the pipeline RAW conflict (§V-B).
//
// When batch i+1 is prefetched while batch i is still training, the pulled
// rows may miss batch i's update. The worker therefore keeps the rows it
// freshly updated in this cache and patches every incoming prefetched batch
// from it (Fig. 10b). Life-cycle (LC) management bounds the cache: an entry
// enters with LC derived from the request-queue capacity and loses one life
// per retired batch once the host store has absorbed the entry's own write;
// at LC 0 it is evicted (no in-flight prefetch can still hold a stale copy).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "codec/grad_codec.hpp"
#include "tensor/matrix.hpp"

namespace elrec {

// Thread confinement, not locking: the cache is owned by the single worker
// thread of the pipeline (§V) and is never shared — sync()/insert()/
// retire_batch() all run on that thread, so it carries no mutex and no
// ELREC_GUARDED_BY annotations on purpose. Handing it to a second thread
// is a contract violation that TSan (ctest -L sanitize under
// ELREC_SANITIZE=thread) would flag as a data race.
class EmbeddingCache {
 public:
  /// `codec` (optional) makes the cache hold its rows at codec precision: a
  /// lossy codec round-trips every inserted row block, so cached values are
  /// exactly what a device cache stored in the codec's wire format would
  /// return, and the encoded footprint feeds pipeline.bytes.cache_sync.
  /// The default (null codec) caches verbatim — bitwise-identical to the
  /// pre-codec cache, with no encode on the insert path at all.
  EmbeddingCache(index_t dim, index_t lc_init, const CodecConfig& codec = {});

  index_t dim() const { return dim_; }

  /// Patches `rows` (pulled for `indices`) with any fresher cached values.
  /// Returns the number of rows patched (Fig. 10b "synchronize").
  index_t sync(const std::vector<index_t>& indices, Matrix& rows) const;

  /// Inserts/refreshes entries after the worker finished training a batch:
  /// `values` holds the post-update rows. `batch_id` tags the write so
  /// eviction can wait for the host to catch up.
  void insert(const std::vector<index_t>& indices, const Matrix& values,
              index_t batch_id);

  /// Called when the server has applied gradients up to `applied_batch_id`
  /// (inclusive) and one more batch retired: decrements every LC and evicts
  /// entries with LC <= 0 whose last write the host has absorbed.
  void retire_batch(index_t applied_batch_id);

  std::size_t size() const { return entries_.size(); }
  std::size_t peak_size() const { return peak_size_; }

 private:
  struct Entry {
    std::vector<float> value;
    index_t lc = 0;
    index_t last_write_batch = -1;
  };

  index_t dim_;
  index_t lc_init_;
  std::unique_ptr<IGradCodec> codec_;  // null when caching verbatim
  EncodedBlob blob_;                   // insert-path scratch
  Matrix roundtrip_;
  std::unordered_map<index_t, Entry> entries_;
  std::size_t peak_size_ = 0;
};

}  // namespace elrec
