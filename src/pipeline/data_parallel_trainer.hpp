// Data-parallel DLRM training across in-process workers (paper Fig. 12's
// EL-Rec multi-GPU mode, with threads standing in for GPUs).
//
// Every worker holds a full replica (MLPs + Eff-TT tables — the point of TT
// compression is that replication fits). Each global batch is split into
// per-worker shards; workers step locally, then ring-all-reduce their
// parameters. For one local SGD step from a common start,
//     mean_w(theta - lr * g_w) == theta - lr * mean_w(g_w),
// so parameter averaging IS synchronous data-parallel SGD — which the tests
// verify by comparing a 2-worker run against a single-worker full-batch run.
#pragma once

#include <memory>

#include "data/synthetic.hpp"
#include "dlrm/dlrm_model.hpp"
#include "pipeline/allreduce.hpp"

namespace elrec {

struct DataParallelConfig {
  int num_workers = 2;
  DlrmConfig model;
  index_t tt_rank = 16;
  index_t tt_threshold = 1000;  // tables >= this become Eff-TT
  float lr = 0.05f;
  std::uint64_t seed = 1;

  // Codec for the all-reduce. Null (default) keeps today's exact
  // parameter-averaging collective, bitwise-identical to the pre-codec
  // trainer. A lossy codec switches to delta compression: workers exchange
  // the encoded local update delta (theta_after - theta_before) and apply
  // the decoded mean to the common pre-step parameters, so the bounded
  // error applies to the step, not to the parameters themselves.
  CodecConfig codec;
};

struct DataParallelStats {
  index_t batches = 0;
  std::vector<float> loss_curve;  // mean worker loss per global batch
  double wall_seconds = 0.0;
  double allreduce_bytes = 0.0;  // raw parameter bytes synchronized per step
  double allreduce_encoded_bytes = 0.0;  // encoded bytes per step (per rank)
};

/// Extracts the samples [begin, end) of `batch` into a standalone MiniBatch.
MiniBatch slice_minibatch(const MiniBatch& batch, index_t begin, index_t end);

class DataParallelTrainer {
 public:
  DataParallelTrainer(DataParallelConfig config, const DatasetSpec& spec);

  /// Runs `num_batches` global batches of `global_batch` samples.
  DataParallelStats train(SyntheticDataset& data, index_t num_batches,
                          index_t global_batch);

  DlrmModel& worker_model(int rank) {
    return *models_[static_cast<std::size_t>(rank)];
  }
  int num_workers() const { return config_.num_workers; }

 private:
  DataParallelConfig config_;
  std::vector<std::unique_ptr<DlrmModel>> models_;
};

}  // namespace elrec
