#include "pipeline/pipeline_trainer.hpp"

#include <atomic>
#include <thread>

#include "common/stopwatch.hpp"

namespace elrec {

PipelineTrainer::PipelineTrainer(HostEmbeddingStore& store,
                                 PipelineConfig config)
    : store_(store), config_(config) {
  ELREC_CHECK(config_.queue_capacity >= 1, "queue capacity must be >= 1");
}

PipelineStats PipelineTrainer::run(
    const std::vector<std::vector<index_t>>& batches,
    const ComputeStep& compute) {
  PipelineStats stats;
  const auto capacity = static_cast<std::size_t>(config_.queue_capacity);
  BlockingQueue<PrefetchedBatch> prefetch_queue(capacity);
  BlockingQueue<GradientPush> gradient_queue(capacity);

  // Highest batch id whose gradients the server has applied; drives cache
  // eviction (the host is authoritative once it absorbed a write).
  std::atomic<index_t> applied_batch_id{-1};

  Stopwatch wall;

  // ---- Server thread (paper Fig. 9, CPU side) ------------------------
  std::thread server([&] {
    std::size_t next_prefetch = 0;
    std::size_t grads_applied = 0;
    while (grads_applied < batches.size()) {
      // Drain any pushed gradients first: this is what keeps host rows as
      // fresh as possible before the next pull.
      while (auto push = gradient_queue.try_pop()) {
        store_.apply_gradients(push->indices, push->grads, config_.lr);
        applied_batch_id.store(push->batch_id, std::memory_order_release);
        ++grads_applied;
      }
      if (next_prefetch < batches.size()) {
        PrefetchedBatch pb;
        pb.batch_id = static_cast<index_t>(next_prefetch);
        pb.indices = batches[next_prefetch];
        store_.pull(pb.indices, pb.rows);
        ++next_prefetch;
        if (!prefetch_queue.push(std::move(pb))) return;
      } else if (grads_applied < batches.size()) {
        // All batches prefetched; block on the remaining gradients.
        auto push = gradient_queue.pop();
        if (!push) return;
        store_.apply_gradients(push->indices, push->grads, config_.lr);
        applied_batch_id.store(push->batch_id, std::memory_order_release);
        ++grads_applied;
      }
    }
    prefetch_queue.close();
  });

  // ---- Worker (caller thread; paper Fig. 9, GPU side) -----------------
  EmbeddingCache cache(store_.dim(), config_.queue_capacity + 1);
  Stopwatch worker_watch;
  double worker_busy = 0.0;
  Matrix grads;
  Matrix updated;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    auto pb = prefetch_queue.pop();
    ELREC_CHECK(pb.has_value(), "prefetch queue closed early");
    worker_watch.reset();

    // Step 1 (Fig. 9): synchronize prefetched rows with the cache.
    if (config_.use_embedding_cache) {
      stats.rows_patched += cache.sync(pb->indices, pb->rows);
    }

    // Compute the batch's gradients on the fresh rows.
    compute(pb->batch_id, pb->indices, pb->rows, grads);
    ELREC_CHECK(grads.rows() == static_cast<index_t>(pb->indices.size()) &&
                    grads.cols() == store_.dim(),
                "compute step produced wrong gradient shape");

    // Worker-side view of the updated rows goes into the cache so the next
    // prefetched batch can be patched (Fig. 10b).
    if (config_.use_embedding_cache) {
      updated.resize(pb->rows.rows(), pb->rows.cols());
      for (index_t i = 0; i < updated.rows(); ++i) {
        const float* r = pb->rows.row(i);
        const float* g = grads.row(i);
        float* u = updated.row(i);
        for (index_t j = 0; j < updated.cols(); ++j) {
          u[j] = r[j] - config_.lr * g[j];
        }
      }
      cache.insert(pb->indices, updated, pb->batch_id);
      cache.retire_batch(applied_batch_id.load(std::memory_order_acquire));
    }

    // Step 3 (Fig. 9): push gradients to the server.
    GradientPush push;
    push.batch_id = pb->batch_id;
    push.indices = std::move(pb->indices);
    push.grads = grads;
    worker_busy += worker_watch.seconds();
    gradient_queue.push(std::move(push));
    ++stats.batches;
  }
  server.join();

  stats.cache_peak = cache.peak_size();
  stats.worker_seconds = worker_busy;
  stats.wall_seconds = wall.seconds();
  return stats;
}

}  // namespace elrec
