#include "pipeline/pipeline_trainer.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "common/fault_injector.hpp"
#include "common/stopwatch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/pipeline_checkpoint.hpp"

namespace elrec {

namespace {

// Bytes-on-queue accounting for the three host-facing streams. These are
// the numbers the simulator's framework cost model and bench_codec consume.
struct PipelineByteCounters {
  obs::Counter& grad_push;  // worker -> gradient queue (encoded)
  obs::Counter& host_push;  // gradient queue -> host store (encoded)
  obs::Counter& host_pull;  // host store -> prefetch queue (encoded)
};

PipelineByteCounters& pipeline_byte_counters() {
  auto& reg = obs::MetricsRegistry::global();
  static PipelineByteCounters c{reg.counter("pipeline.bytes.grad_push"),
                                reg.counter("pipeline.bytes.host_push"),
                                reg.counter("pipeline.bytes.host_pull")};
  return c;
}

std::string describe_exception(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

PipelineTrainer::PipelineTrainer(HostEmbeddingStore& store,
                                 PipelineConfig config)
    : store_(store), config_(std::move(config)) {
  ELREC_CHECK(config_.queue_capacity >= 1, "queue capacity must be >= 1");
  ELREC_CHECK(config_.checkpoint_every_n == 0 ||
                  !config_.checkpoint_path.empty(),
              "checkpoint_every_n requires a checkpoint_path");
}

index_t PipelineTrainer::resume(const std::string& path) {
  return load_pipeline_checkpoint(store_, path, config_.codec.id);
}

PipelineStats PipelineTrainer::run(
    const std::vector<std::vector<index_t>>& batches,
    const ComputeStep& compute, index_t start_batch) {
  const auto total = static_cast<index_t>(batches.size());
  ELREC_CHECK(start_batch >= 0 && start_batch <= total,
              "start_batch out of range");
  PipelineStats stats;
  const auto capacity = static_cast<std::size_t>(config_.queue_capacity);
  BlockingQueue<PrefetchedBatch> prefetch_queue(capacity);
  BlockingQueue<GradientPush> gradient_queue(capacity);

  // Highest batch id whose gradients the server has applied; drives cache
  // eviction (the host is authoritative once it absorbed a write).
  std::atomic<index_t> applied_batch_id{-1};

  // Set by the server before it closes the queues on failure; the queue
  // mutex orders the write against the worker observing the close.
  struct ThreadFailure {
    std::exception_ptr error;
    index_t batch_id = -1;
    const char* stage = "server";
  };
  ThreadFailure server_failure;

  std::atomic<index_t> checkpoints_written{0};

  // Queue traffic accounting, merged into stats after the threads join.
  std::atomic<std::uint64_t> encoded_bytes{0};
  std::atomic<std::uint64_t> raw_bytes{0};
  auto count_stream = [&](obs::Counter& counter, const EncodedBlob& blob,
                          std::uint64_t raw) {
    counter.add(blob.size());
    encoded_bytes.fetch_add(blob.size(), std::memory_order_relaxed);
    raw_bytes.fetch_add(raw, std::memory_order_relaxed);
  };

  Stopwatch wall;

  // ---- Server thread (paper Fig. 9, CPU side) ------------------------
  std::thread server([&] {
    index_t current_batch = -1;
    const char* stage = "server";
    try {
      index_t next_prefetch = start_batch;
      index_t grads_applied = start_batch;
      // Per-thread codec instance for the host_pull stream (encode is
      // stateful); pushed gradient blobs decode via the stateless free
      // function, so they can be produced by the worker's instance.
      auto pull_codec = make_codec(config_.codec);
      Matrix pulled;
      Matrix decoded_grads;

      auto apply = [&](GradientPush& push) {
        stage = "server";
        current_batch = push.batch_id;
        count_stream(pipeline_byte_counters().host_push, push.grads,
                     push.indices.size() * static_cast<std::uint64_t>(
                                               store_.dim()) * sizeof(float));
        decode_blob(push.grads, decoded_grads);
        {
          TRACE_SPAN("pipeline.host_push");
          with_retry(config_.host_retry, "host-store push", [&] {
            store_.apply_gradients(push.indices, decoded_grads, config_.lr);
          });
        }
        applied_batch_id.store(push.batch_id, std::memory_order_release);
        ++grads_applied;
        // Quiescent point: every gradient <= batch_id applied, none beyond
        // (the gradient queue is FIFO with this thread as sole consumer),
        // so the store equals the sequential state after batch_id + 1
        // batches — exactly what resume() needs to replay from.
        if (config_.checkpoint_every_n > 0 &&
            (push.batch_id + 1) % config_.checkpoint_every_n == 0) {
          stage = "checkpoint";
          TRACE_SPAN("pipeline.checkpoint");
          save_pipeline_checkpoint(store_, push.batch_id + 1,
                                   config_.checkpoint_path, config_.codec.id);
          checkpoints_written.fetch_add(1, std::memory_order_relaxed);
          stage = "server";
        }
      };

      while (grads_applied < total) {
        ELREC_FAULT_POINT("pipeline.server_tick");
        // Drain any pushed gradients first: this is what keeps host rows as
        // fresh as possible before the next pull.
        while (auto push = gradient_queue.try_pop()) apply(*push);
        if (next_prefetch < total) {
          stage = "server";
          current_batch = next_prefetch;
          PrefetchedBatch pb;
          pb.batch_id = next_prefetch;
          pb.indices = batches[static_cast<std::size_t>(next_prefetch)];
          {
            TRACE_SPAN("pipeline.host_pull");
            with_retry(config_.host_retry, "host-store pull",
                       [&] { store_.pull(pb.indices, pulled); });
          }
          pull_codec->encode(pulled, pb.rows);
          count_stream(pipeline_byte_counters().host_pull, pb.rows,
                       static_cast<std::uint64_t>(pulled.size()) *
                           sizeof(float));
          ++next_prefetch;
          if (!prefetch_queue.push(std::move(pb))) return;
        } else if (grads_applied < total) {
          // All batches prefetched; block on the remaining gradients.
          auto push = gradient_queue.pop();
          if (!push) return;
          apply(*push);
        }
      }
      prefetch_queue.close();
    } catch (...) {
      server_failure.error = std::current_exception();
      server_failure.batch_id = current_batch;
      server_failure.stage = stage;
      // Closing both queues unwedges a worker blocked on either side.
      prefetch_queue.close();
      gradient_queue.close();
    }
  });

  // Shutdown protocol: close both queues, join the server, then drain any
  // in-flight gradients into the store (FIFO order) so every successfully
  // computed batch is durable. Safe to call on every exit path.
  auto quiesce = [&] {
    prefetch_queue.close();
    gradient_queue.close();
    if (server.joinable()) server.join();
    Matrix drained;
    while (auto push = gradient_queue.try_pop()) {
      try {
        decode_blob(push->grads, drained);
        with_retry(config_.host_retry, "host-store push (drain)", [&] {
          store_.apply_gradients(push->indices, drained, config_.lr);
        });
      } catch (...) {
        break;  // store unusable; the remaining gradients are lost anyway
      }
    }
  };

  // Rethrows a recorded failure as a structured PipelineError (after the
  // pipeline has been quiesced).
  auto raise = [&](const char* stage, index_t batch_id,
                   const std::exception_ptr& cause) {
    quiesce();
    if (server_failure.error && cause != server_failure.error) {
      // Prefer the root cause: a worker unblocked by a dying server should
      // report the server's failure, not its own closed-queue symptom.
      throw PipelineError(server_failure.stage, server_failure.batch_id,
                          describe_exception(server_failure.error));
    }
    throw PipelineError(stage, batch_id, describe_exception(cause));
  };

  // ---- Worker (caller thread; paper Fig. 9, GPU side) -----------------
  EmbeddingCache cache(store_.dim(), config_.queue_capacity + 1,
                       config_.codec);
  Stopwatch worker_watch;
  double worker_busy = 0.0;
  // Worker-side codec instance for the grad_push stream.
  auto grad_codec = make_codec(config_.codec);
  const bool lossless = config_.codec.lossless();
  Matrix batch_rows;
  Matrix grads;
  Matrix grads_seen_by_host;
  EncodedBlob grad_blob;
  Matrix updated;
  for (index_t b = start_batch; b < total; ++b) {
    PrefetchedBatch pb;
    TRACE_SPAN("pipeline.batch");
    {
      TRACE_SPAN("pipeline.prefetch_wait");
      if (config_.queue_timeout.count() > 0) {
        const QueueOpStatus st =
            prefetch_queue.try_pop_for(pb, config_.queue_timeout);
        if (st == QueueOpStatus::kTimeout) {
          raise("worker", b,
                std::make_exception_ptr(Error(
                    "timed out waiting for a prefetched batch — server "
                    "stalled?")));
        }
        if (st == QueueOpStatus::kClosed) {
          raise("worker", b,
                std::make_exception_ptr(Error("prefetch queue closed early")));
        }
      } else {
        auto popped = prefetch_queue.pop();
        if (!popped) {
          raise("worker", b,
                std::make_exception_ptr(Error("prefetch queue closed early")));
        }
        pb = std::move(*popped);
      }
    }
    worker_watch.reset();

    try {
      decode_blob(pb.rows, batch_rows);

      // Step 1 (Fig. 9): synchronize prefetched rows with the cache.
      if (config_.use_embedding_cache) {
        TRACE_SPAN("pipeline.cache_sync");
        stats.rows_patched += cache.sync(pb.indices, batch_rows);
      }

      // Compute the batch's gradients on the fresh rows.
      {
        TRACE_SPAN("pipeline.compute");
        ELREC_FAULT_POINT("pipeline.compute");
        compute(pb.batch_id, pb.indices, batch_rows, grads);
      }
      ELREC_CHECK(grads.rows() == static_cast<index_t>(pb.indices.size()) &&
                      grads.cols() == store_.dim(),
                  "compute step produced wrong gradient shape");

      // Encode the gradients for the queue. Under a lossy codec the cache
      // must be updated with what the HOST will apply — the decoded
      // gradients — or the worker's cached rows would drift from the host
      // store by the (unsent) quantization residual every batch.
      grad_codec->encode(grads, grad_blob);
      const Matrix* host_grads = &grads;
      if (!lossless) {
        decode_blob(grad_blob, grads_seen_by_host);
        host_grads = &grads_seen_by_host;
      }

      // Worker-side view of the updated rows goes into the cache so the next
      // prefetched batch can be patched (Fig. 10b).
      if (config_.use_embedding_cache) {
        TRACE_SPAN("pipeline.cache_update");
        updated.resize(batch_rows.rows(), batch_rows.cols());
        for (index_t i = 0; i < updated.rows(); ++i) {
          const float* r = batch_rows.row(i);
          const float* g = host_grads->row(i);
          float* u = updated.row(i);
          for (index_t j = 0; j < updated.cols(); ++j) {
            u[j] = r[j] - config_.lr * g[j];
          }
        }
        cache.insert(pb.indices, updated, pb.batch_id);
        cache.retire_batch(applied_batch_id.load(std::memory_order_acquire));
      }
    } catch (...) {
      raise("worker", pb.batch_id, std::current_exception());
    }

    // Step 3 (Fig. 9): push encoded gradients to the server.
    GradientPush push;
    push.batch_id = pb.batch_id;
    push.indices = std::move(pb.indices);
    push.grads = grad_blob;
    count_stream(pipeline_byte_counters().grad_push, push.grads,
                 static_cast<std::uint64_t>(grads.size()) * sizeof(float));
    worker_busy += worker_watch.seconds();
    {
      TRACE_SPAN("pipeline.grad_push");
      if (config_.queue_timeout.count() > 0) {
        const QueueOpStatus st =
            gradient_queue.try_push_for(push, config_.queue_timeout);
        if (st == QueueOpStatus::kTimeout) {
          raise("worker", pb.batch_id,
                std::make_exception_ptr(
                    Error("timed out pushing gradients — server stalled?")));
        }
        if (st == QueueOpStatus::kClosed) {
          raise("worker", pb.batch_id,
                std::make_exception_ptr(Error("gradient queue closed early")));
        }
      } else if (!gradient_queue.push(std::move(push))) {
        raise("worker", pb.batch_id,
              std::make_exception_ptr(Error("gradient queue closed early")));
      }
    }
    ++stats.batches;
  }
  server.join();
  if (server_failure.error) {
    raise(server_failure.stage, server_failure.batch_id, server_failure.error);
  }

  stats.cache_peak = cache.peak_size();
  stats.checkpoints_written = checkpoints_written.load();
  stats.worker_seconds = worker_busy;
  stats.wall_seconds = wall.seconds();
  stats.encoded_queue_bytes = encoded_bytes.load(std::memory_order_relaxed);
  stats.raw_queue_bytes = raw_bytes.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace elrec
