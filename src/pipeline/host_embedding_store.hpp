// Host-memory embedding store — the parameter-server side of §V.
//
// Holds the embedding tables that do not fit in device memory. The server
// thread gathers rows for upcoming batches (pull) and applies pushed
// gradients (SGD), exactly the two PS operations of paper Fig. 9.
#pragma once

#include <mutex>

#include "common/thread_annotations.hpp"
#include "embed/index_batch.hpp"
#include "tensor/matrix.hpp"

namespace elrec {

class HostEmbeddingStore {
 public:
  HostEmbeddingStore(index_t num_rows, index_t dim, Prng& rng,
                     float init_std = 0.01f);

  // Shape is fixed at construction, so reading it never races with the
  // guarded element writes; exempt from the lock analysis.
  index_t num_rows() const ELREC_NO_THREAD_SAFETY_ANALYSIS {
    return weights_.rows();
  }
  index_t dim() const ELREC_NO_THREAD_SAFETY_ANALYSIS {
    return weights_.cols();
  }

  /// Gathers the given (typically unique) rows into `rows` (one per index).
  void pull(const std::vector<index_t>& indices, Matrix& rows) const;

  /// SGD push: weights[indices[i]] -= lr * grads[i].
  void apply_gradients(const std::vector<index_t>& indices, const Matrix& grads,
                       float lr);

  /// Snapshot of one row (tests / oracle comparison).
  std::vector<float> row_copy(index_t row) const;

  /// Replaces the full weight matrix (checkpoint resume). Shape must match.
  void load_weights(const Matrix& weights);

  /// Lock-free view for quiescent readers only: the checkpoint writer
  /// calls this after every gradient up to the checkpoint batch has been
  /// applied and no pull is in flight (pipeline_checkpoint.cpp).
  const Matrix& weights() const ELREC_NO_THREAD_SAFETY_ANALYSIS {
    return weights_;
  }

  std::size_t parameter_bytes() const ELREC_NO_THREAD_SAFETY_ANALYSIS {
    return static_cast<std::size_t>(weights_.size()) * sizeof(float);
  }

 private:
  // The server thread pulls while the store owner may be applying pushed
  // gradients; a mutex keeps the two phases atomic per call.
  mutable std::mutex mu_;
  Matrix weights_ ELREC_GUARDED_BY(mu_);
};

}  // namespace elrec
