// Host-memory embedding store — the parameter-server side of §V.
//
// Holds the embedding tables that do not fit in device memory. The server
// thread gathers rows for upcoming batches (pull) and applies pushed
// gradients (SGD), exactly the two PS operations of paper Fig. 9.
#pragma once

#include <mutex>

#include "embed/index_batch.hpp"
#include "tensor/matrix.hpp"

namespace elrec {

class HostEmbeddingStore {
 public:
  HostEmbeddingStore(index_t num_rows, index_t dim, Prng& rng,
                     float init_std = 0.01f);

  index_t num_rows() const { return weights_.rows(); }
  index_t dim() const { return weights_.cols(); }

  /// Gathers the given (typically unique) rows into `rows` (one per index).
  void pull(const std::vector<index_t>& indices, Matrix& rows) const;

  /// SGD push: weights[indices[i]] -= lr * grads[i].
  void apply_gradients(const std::vector<index_t>& indices, const Matrix& grads,
                       float lr);

  /// Snapshot of one row (tests / oracle comparison).
  std::vector<float> row_copy(index_t row) const;

  /// Replaces the full weight matrix (checkpoint resume). Shape must match.
  void load_weights(const Matrix& weights);

  const Matrix& weights() const { return weights_; }

  std::size_t parameter_bytes() const {
    return static_cast<std::size_t>(weights_.size()) * sizeof(float);
  }

 private:
  // The server thread pulls while the store owner may be applying pushed
  // gradients; a mutex keeps the two phases atomic per call.
  mutable std::mutex mu_;
  Matrix weights_;
};

}  // namespace elrec
