#include "pipeline/allreduce.hpp"

#include "common/error.hpp"

namespace elrec {

RingAllReduce::RingAllReduce(int num_workers)
    : num_workers_(num_workers),
      buffers_(static_cast<std::size_t>(num_workers)),
      blobs_(static_cast<std::size_t>(num_workers)),
      barrier_(num_workers) {
  ELREC_CHECK(num_workers >= 1, "need at least one worker");
}

void RingAllReduce::allreduce_mean(int rank, std::span<float> data) {
  ELREC_CHECK(rank >= 0 && rank < num_workers_, "bad rank");
  if (num_workers_ == 1) return;

  buffers_[static_cast<std::size_t>(rank)] = data;
  barrier_.arrive_and_wait();
  ELREC_CHECK(buffers_[0].size() == data.size(),
              "all-reduce buffers must have equal length");

  const std::size_t n = data.size();
  const int w = num_workers_;
  // Chunk boundaries: chunk c covers [c*n/w, (c+1)*n/w).
  auto chunk_begin = [&](int c) {
    return n * static_cast<std::size_t>(c) / static_cast<std::size_t>(w);
  };

  // Reduce-scatter: after step s, worker r owns the full sum of chunk
  // (r - s) mod w ... finished with each worker owning one summed chunk.
  for (int step = 0; step < w - 1; ++step) {
    const int src = (rank - step - 1 + 2 * w) % w;  // chunk to accumulate
    const int from = (rank - 1 + w) % w;            // left neighbor's buffer
    const std::size_t lo = chunk_begin(src);
    const std::size_t hi = chunk_begin(src + 1);
    // Each worker reads its left neighbor's chunk and adds into its own.
    // Barrier-separated steps make the reads race-free.
    for (std::size_t i = lo; i < hi; ++i) {
      data[i] += buffers_[static_cast<std::size_t>(from)][i];
    }
    barrier_.arrive_and_wait();
  }
  // Worker r now owns the fully reduced chunk (r - (w-1)) mod w == (r+1)%w.
  const int owned = (rank + 1) % w;
  const float inv = 1.0f / static_cast<float>(w);
  for (std::size_t i = chunk_begin(owned); i < chunk_begin(owned + 1); ++i) {
    data[i] *= inv;
  }
  barrier_.arrive_and_wait();

  // All-gather: fetch every other worker's owned chunk (owned chunks are
  // final after the reduce-scatter, so reading the owner directly is safe;
  // barriers keep step writes and reads disjoint).
  for (int step = 0; step < w - 1; ++step) {
    const int src_rank = (rank - step - 1 + w) % w;  // never self
    const int chunk = (src_rank + 1) % w;
    const std::size_t lo = chunk_begin(chunk);
    const std::size_t hi = chunk_begin(chunk + 1);
    for (std::size_t i = lo; i < hi; ++i) {
      data[i] = buffers_[static_cast<std::size_t>(src_rank)][i];
    }
    barrier_.arrive_and_wait();
  }
}

std::size_t RingAllReduce::allreduce_mean_compressed(int rank,
                                                     std::span<float> data,
                                                     IGradCodec& codec) {
  ELREC_CHECK(rank >= 0 && rank < num_workers_, "bad rank");
  if (num_workers_ == 1) return 0;

  // Publish this rank's encoded contribution (shape 1 x n: the buffer is
  // one flat tensor; sparsification applies all-or-nothing per buffer).
  EncodedBlob& mine = blobs_[static_cast<std::size_t>(rank)];
  codec.encode(data.data(), 1, static_cast<index_t>(data.size()), mine);
  barrier_.arrive_and_wait();

  // Every rank decodes every contribution in rank order and averages:
  // identical float arithmetic on all ranks, so replicas stay bitwise
  // equal after the collective.
  const std::size_t n = data.size();
  std::vector<float> decoded(n);
  std::vector<float> acc(n, 0.0f);
  for (int r = 0; r < num_workers_; ++r) {
    const EncodedBlob& blob = blobs_[static_cast<std::size_t>(r)];
    const CodecWireHeader h = peek_blob_header(blob);
    ELREC_CHECK(h.rows * h.cols == static_cast<index_t>(n),
                "all-reduce buffers must have equal length");
    decode_blob_into(blob, decoded.data(), n);
    for (std::size_t i = 0; i < n; ++i) acc[i] += decoded[i];
  }
  const float inv = 1.0f / static_cast<float>(num_workers_);
  for (std::size_t i = 0; i < n; ++i) data[i] = acc[i] * inv;

  // Nobody may re-encode into their blob slot until every rank has read
  // all slots.
  barrier_.arrive_and_wait();
  return mine.size();
}

double RingAllReduce::ring_bytes_per_worker(double payload_bytes,
                                            int num_workers) {
  if (num_workers <= 1) return 0.0;
  return 2.0 * (num_workers - 1) / num_workers * payload_bytes;
}

}  // namespace elrec
