#include "pipeline/pipeline_checkpoint.hpp"

#include <cstring>

#include "common/serialize.hpp"
#include "pipeline/pipeline_error.hpp"

namespace elrec {

namespace {
constexpr char kTagV1[4] = {'E', 'P', 'C', '1'};  // legacy, null codec only
constexpr char kTagV2[4] = {'E', 'P', 'C', '2'};  // + u32 codec id
}  // namespace

void save_pipeline_checkpoint(const HostEmbeddingStore& store,
                              index_t next_batch, const std::string& path,
                              CodecId codec) {
  // store.weights() is the quiescent-only lock-free view (see its
  // annotation): the trainers call this only after every gradient up to
  // `next_batch - 1` has been applied and no pull is in flight.
  write_checkpoint_atomic(path, [&](BinaryWriter& w) {
    if (codec == CodecId::kNull) {
      // Null-codec runs keep the legacy byte-identical format.
      w.write_tag(kTagV1);
    } else {
      w.write_tag(kTagV2);
      w.write_pod(static_cast<std::uint32_t>(codec));
    }
    w.write_i64(next_batch);
    w.write_i64(store.num_rows());
    w.write_i64(store.dim());
    w.write_array(store.weights().data(),
                  static_cast<std::size_t>(store.weights().size()));
  });
}

index_t load_pipeline_checkpoint(HostEmbeddingStore& store,
                                 const std::string& path, CodecId codec) {
  BinaryReader r(path);
  char tag[4];
  for (char& c : tag) c = r.read_pod<char>();
  CodecId saved = CodecId::kNull;
  if (std::memcmp(tag, kTagV2, 4) == 0) {
    saved = static_cast<CodecId>(r.read_pod<std::uint32_t>());
  } else {
    ELREC_CHECK(std::memcmp(tag, kTagV1, 4) == 0,
                "unrecognized pipeline checkpoint tag");
  }
  if (saved != codec) {
    throw PipelineError(
        "resume", -1,
        "checkpoint '" + path + "' was written under codec '" +
            codec_name(saved) + "' but this run uses '" + codec_name(codec) +
            "' — refusing to resume across codecs");
  }
  const index_t next_batch = r.read_i64();
  const index_t rows = r.read_i64();
  const index_t dim = r.read_i64();
  ELREC_CHECK(rows == store.num_rows() && dim == store.dim(),
              "pipeline checkpoint shape mismatch");
  const auto values = r.read_vector<float>();
  r.expect_footer();
  ELREC_CHECK(static_cast<index_t>(values.size()) == rows * dim,
              "pipeline checkpoint payload size mismatch");
  Matrix weights(rows, dim);
  std::copy(values.begin(), values.end(), weights.data());
  store.load_weights(weights);
  return next_batch;
}

}  // namespace elrec
