#include "pipeline/pipeline_checkpoint.hpp"

#include "common/serialize.hpp"

namespace elrec {

namespace {
constexpr char kTag[4] = {'E', 'P', 'C', '1'};
}

void save_pipeline_checkpoint(const HostEmbeddingStore& store,
                              index_t next_batch, const std::string& path) {
  // store.weights() is the quiescent-only lock-free view (see its
  // annotation): the trainers call this only after every gradient up to
  // `next_batch - 1` has been applied and no pull is in flight.
  write_checkpoint_atomic(path, [&](BinaryWriter& w) {
    w.write_tag(kTag);
    w.write_i64(next_batch);
    w.write_i64(store.num_rows());
    w.write_i64(store.dim());
    w.write_array(store.weights().data(),
                  static_cast<std::size_t>(store.weights().size()));
  });
}

index_t load_pipeline_checkpoint(HostEmbeddingStore& store,
                                 const std::string& path) {
  BinaryReader r(path);
  r.expect_tag(kTag);
  const index_t next_batch = r.read_i64();
  const index_t rows = r.read_i64();
  const index_t dim = r.read_i64();
  ELREC_CHECK(rows == store.num_rows() && dim == store.dim(),
              "pipeline checkpoint shape mismatch");
  const auto values = r.read_vector<float>();
  r.expect_footer();
  ELREC_CHECK(static_cast<index_t>(values.size()) == rows * dim,
              "pipeline checkpoint payload size mismatch");
  Matrix weights(rows, dim);
  std::copy(values.begin(), values.end(), weights.data());
  store.load_weights(weights);
  return next_batch;
}

}  // namespace elrec
