#include "pipeline/data_parallel_trainer.hpp"

#include <thread>

#include "common/stopwatch.hpp"
#include "core/eff_tt_table.hpp"
#include "embed/embedding_bag.hpp"

namespace elrec {

MiniBatch slice_minibatch(const MiniBatch& batch, index_t begin, index_t end) {
  ELREC_CHECK(begin >= 0 && begin <= end && end <= batch.batch_size(),
              "bad slice bounds");
  MiniBatch out;
  const index_t n = end - begin;
  out.dense.resize(n, batch.dense.cols());
  for (index_t s = 0; s < n; ++s) {
    std::copy(batch.dense.row(begin + s),
              batch.dense.row(begin + s) + batch.dense.cols(),
              out.dense.row(s));
  }
  out.labels.assign(batch.labels.begin() + begin, batch.labels.begin() + end);
  out.sparse.reserve(batch.sparse.size());
  for (const IndexBatch& table : batch.sparse) {
    IndexBatch sliced;
    sliced.offsets.reserve(static_cast<std::size_t>(n) + 1);
    const index_t base = table.bag_begin(begin);
    for (index_t s = begin; s <= end; ++s) {
      sliced.offsets.push_back(table.offsets[static_cast<std::size_t>(s)] -
                               base);
    }
    sliced.indices.assign(table.indices.begin() + base,
                          table.indices.begin() + table.bag_begin(end));
    out.sparse.push_back(std::move(sliced));
  }
  return out;
}

namespace {

std::unique_ptr<DlrmModel> build_replica(const DataParallelConfig& config,
                                         const DatasetSpec& spec) {
  // Every replica uses an identically-seeded generator, so all workers
  // start from the same parameters (required for parameter averaging to
  // equal gradient averaging).
  Prng rng(config.seed);
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  for (index_t rows : spec.table_rows) {
    if (rows >= config.tt_threshold) {
      tables.push_back(std::make_unique<EffTTTable>(
          rows,
          TTShape::balanced(rows, config.model.embedding_dim, 3,
                            config.tt_rank),
          rng));
    } else {
      tables.push_back(std::make_unique<EmbeddingBag>(
          rows, config.model.embedding_dim, rng));
    }
  }
  return std::make_unique<DlrmModel>(config.model, std::move(tables), rng);
}

}  // namespace

DataParallelTrainer::DataParallelTrainer(DataParallelConfig config,
                                         const DatasetSpec& spec)
    : config_(std::move(config)) {
  ELREC_CHECK(config_.num_workers >= 1, "need at least one worker");
  for (int w = 0; w < config_.num_workers; ++w) {
    models_.push_back(build_replica(config_, spec));
  }
}

DataParallelStats DataParallelTrainer::train(SyntheticDataset& data,
                                             index_t num_batches,
                                             index_t global_batch) {
  const int w = config_.num_workers;
  ELREC_CHECK(global_batch % w == 0,
              "global batch must divide evenly across workers");
  DataParallelStats stats;
  Stopwatch wall;
  RingAllReduce ring(w);
  std::vector<float> losses(static_cast<std::size_t>(w), 0.0f);

  const bool lossy = !config_.codec.lossless();

  for (index_t b = 0; b < num_batches; ++b) {
    const MiniBatch global = data.next_batch(global_batch);
    const index_t shard = global_batch / w;

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(w));
    double step_bytes = 0.0;
    double step_encoded_bytes = 0.0;
    for (int rank = 0; rank < w; ++rank) {
      threads.emplace_back([&, rank] {
        DlrmModel& model = *models_[static_cast<std::size_t>(rank)];
        // Delta compression needs the common pre-step parameters: replicas
        // are identical here (post-construction or post-collective).
        std::vector<std::vector<float>> prev;
        if (lossy) {
          model.visit_parameters([&](float* p, std::size_t n) {
            prev.emplace_back(p, p + n);
          });
        }
        const MiniBatch local =
            slice_minibatch(global, rank * shard, (rank + 1) * shard);
        losses[static_cast<std::size_t>(rank)] =
            model.train_step(local, config_.lr);
        // Synchronize every parameter buffer; all workers traverse buffers
        // in the same order (collective semantics); buffer count/sizes are
        // identical by construction.
        if (!lossy) {
          // Exact path: ring-all-reduce the parameters to the mean.
          model.visit_parameters([&](float* p, std::size_t n) {
            ring.allreduce_mean(rank, {p, n});
            if (rank == 0) step_bytes += static_cast<double>(n) * 4;
          });
        } else {
          // Compressed path: exchange the encoded update delta and rebase
          // it onto the common pre-step parameters. For one local SGD step
          // delta == -lr * g_w, so the decoded-mean delta is synchronous
          // SGD with error-bounded gradients.
          auto codec = make_codec(config_.codec);
          std::vector<float> delta;
          std::size_t buf = 0;
          model.visit_parameters([&](float* p, std::size_t n) {
            const std::vector<float>& before = prev[buf++];
            delta.resize(n);
            for (std::size_t i = 0; i < n; ++i) delta[i] = p[i] - before[i];
            const std::size_t enc = ring.allreduce_mean_compressed(
                rank, {delta.data(), n}, *codec);
            for (std::size_t i = 0; i < n; ++i) p[i] = before[i] + delta[i];
            if (rank == 0) {
              step_bytes += static_cast<double>(n) * 4;
              step_encoded_bytes += static_cast<double>(enc);
            }
          });
        }
      });
    }
    for (auto& t : threads) t.join();
    stats.allreduce_bytes = step_bytes;
    stats.allreduce_encoded_bytes = step_encoded_bytes;

    float mean_loss = 0.0f;
    for (float l : losses) mean_loss += l;
    stats.loss_curve.push_back(mean_loss / static_cast<float>(w));
    ++stats.batches;
  }
  stats.wall_seconds = wall.seconds();
  return stats;
}

}  // namespace elrec
