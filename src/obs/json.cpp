#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace elrec::obs {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::string parse_document(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return error_;
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after value");
    return error_;
  }

 private:
  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return !fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.str);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return parse_literal("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return parse_literal("false");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return parse_literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return !fail("expected string key in object");
      }
      if (!parse_string(key)) return false;
      for (const auto& [k, v] : out.object) {
        if (k == key) return !fail("duplicate key \"" + key + "\"");
      }
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }

  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return !fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return !fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return !fail("bad \\u escape");
            }
            ++pos_;
          }
          out.push_back('?');  // not decoded; validation only
          break;
        }
        default:
          return !fail("bad escape character");
      }
    }
    return !fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (peek('-')) {
    }
    if (!digits()) return !fail("expected a value");
    if (peek('.') && !digits()) return !fail("digits required after '.'");
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) return !fail("digits required in exponent");
    }
    out.type = JsonValue::Type::kNumber;
    out.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool parse_literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return !fail(std::string("bad literal, expected '") + word + "'");
      }
    }
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool peek(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool expect(char c) {
    if (!peek(c)) return !fail(std::string("expected '") + c + "'");
    return true;
  }

  // Records the first error; returns true so call sites can `return !fail()`.
  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::string parse_json(const std::string& text, JsonValue& out) {
  out = JsonValue{};
  return Parser(text).parse_document(out);
}

}  // namespace elrec::obs
