#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace elrec::obs {

namespace {

// CAS loops because std::atomic<double>::fetch_add / fetch_max portability
// across the supported toolchains is not worth the dependency; contention on
// a histogram is per-event, not per-sample-bucket, so the loop converges
// immediately in practice.
void atomic_add(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // <= 0 and NaN collapse into the floor bucket
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  int octave = exp - kMinExp;
  if (octave < 0) octave = 0;
  if (octave >= kOctaves) octave = kOctaves - 1;
  int sub = static_cast<int>((m - 0.5) * 2.0 * kSubBuckets);
  if (sub < 0) sub = 0;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return octave * kSubBuckets + sub;
}

double Histogram::bucket_representative(int idx) {
  const int octave = idx / kSubBuckets;
  const int sub = idx % kSubBuckets;
  const double m = 0.5 + (sub + 0.5) / (2.0 * kSubBuckets);
  return std::ldexp(m, octave + kMinExp);
}

void Histogram::record(double v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_max(max_, v);
}

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  std::uint64_t counts[kOctaves * kSubBuckets];
  std::uint64_t total = 0;
  for (int i = 0; i < kOctaves * kSubBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  s.count = total;
  if (total == 0) return s;
  s.mean = sum_.load(std::memory_order_relaxed) / static_cast<double>(total);
  s.max = max_.load(std::memory_order_relaxed);

  // Nearest-rank percentile over the bucketed distribution (same rank rule
  // the old exact recorder used), reported as the bucket's representative.
  auto percentile = [&](double q) {
    auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
    if (rank >= total) rank = total - 1;
    std::uint64_t seen = 0;
    for (int i = 0; i < kOctaves * kSubBuckets; ++i) {
      seen += counts[i];
      if (seen > rank) return std::min(bucket_representative(i), s.max);
    }
    return s.max;
  };
  s.p50 = percentile(0.50);
  s.p95 = percentile(0.95);
  s.p99 = percentile(0.99);
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::check_kind(const std::string& name, Kind kind) const {
  const auto it = kind_of_.find(name);
  ELREC_CHECK(it == kind_of_.end() || it->second == kind,
              "metric '" + name + "' already registered as a different kind");
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  check_kind(name, Kind::kCounter);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
    kind_of_.emplace(name, Kind::kCounter);
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  check_kind(name, Kind::kGauge);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
    kind_of_.emplace(name, Kind::kGauge);
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  check_kind(name, Kind::kHistogram);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
    kind_of_.emplace(name, Kind::kHistogram);
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->summary());
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += "\"" + counters[i].first +
           "\": " + std::to_string(counters[i].second);
    if (i + 1 < counters.size()) out += ", ";
  }
  out += "}, \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += "\"" + gauges[i].first + "\": " + std::to_string(gauges[i].second);
    if (i + 1 < gauges.size()) out += ", ";
  }
  out += "}, \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSummary& h = histograms[i].second;
    out += "\"" + histograms[i].first +
           "\": {\"count\": " + std::to_string(h.count) +
           ", \"mean\": " + fmt_double(h.mean) +
           ", \"p50\": " + fmt_double(h.p50) +
           ", \"p95\": " + fmt_double(h.p95) +
           ", \"p99\": " + fmt_double(h.p99) +
           ", \"max\": " + fmt_double(h.max) + "}";
    if (i + 1 < histograms.size()) out += ", ";
  }
  out += "}}";
  return out;
}

}  // namespace elrec::obs
