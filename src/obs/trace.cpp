#include "obs/trace.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace elrec::obs {

namespace {

bool env_trace_enabled() {
  const char* v = std::getenv("ELREC_TRACING");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "OFF") == 0 || std::strcmp(v, "false") == 0);
}

// Owns every thread's ring so retained events survive thread exit (the
// exporter runs after workers are joined). Buffers are handed out once per
// thread and cached in a thread_local raw pointer.
struct TraceRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadTraceBuffer>> buffers ELREC_GUARDED_BY(mu);
  std::size_t capacity = 8192;

  static TraceRegistry& get() {
    static TraceRegistry* registry = new TraceRegistry();  // never destroyed:
    // worker threads may outlive static destruction order otherwise.
    return *registry;
  }

  ThreadTraceBuffer* register_thread() {
    std::lock_guard lock(mu);
    buffers.push_back(std::make_unique<ThreadTraceBuffer>(
        static_cast<std::uint32_t>(buffers.size()), capacity));
    return buffers.back().get();
  }
};

thread_local ThreadTraceBuffer* t_buffer = nullptr;

}  // namespace

namespace detail {

std::atomic<bool> g_trace_enabled{env_trace_enabled()};

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns) {
  ThreadTraceBuffer* buf = t_buffer;
  if (buf == nullptr) {
    buf = TraceRegistry::get().register_thread();
    t_buffer = buf;
  }
  buf->push(name, start_ns, dur_ns);
}

std::vector<const ThreadTraceBuffer*> all_buffers() {
  TraceRegistry& reg = TraceRegistry::get();
  std::lock_guard lock(reg.mu);
  std::vector<const ThreadTraceBuffer*> out;
  out.reserve(reg.buffers.size());
  for (const auto& b : reg.buffers) out.push_back(b.get());
  return out;
}

}  // namespace detail

void set_trace_enabled(bool enabled) {
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void set_trace_capacity(std::size_t events) {
  TraceRegistry& reg = TraceRegistry::get();
  std::lock_guard lock(reg.mu);
  reg.capacity = events > 0 ? events : 1;
}

void clear_trace() {
  TraceRegistry& reg = TraceRegistry::get();
  std::lock_guard lock(reg.mu);
  for (auto& b : reg.buffers) b->clear();
}

TraceStats trace_stats() {
  TraceStats s;
  for (const ThreadTraceBuffer* b : detail::all_buffers()) {
    ++s.threads;
    s.events_retained += b->size();
    s.events_dropped += b->dropped();
  }
  return s;
}

}  // namespace elrec::obs
