// Unified metrics substrate (counters / gauges / histograms) shared by
// training, serving and the benchmarks.
//
// Primitives are standalone value types on relaxed atomics — a Counter is a
// single fetch_add per event, a Histogram is a handful — so they can sit on
// hot paths (the batched-GEMM launch counters, the serving latency split)
// without perturbing timing in any measurable way, and without touching the
// training math at all: recording never reads or writes model state, which
// is what makes the tracing-on ≡ tracing-off invariance contract hold.
//
// The MetricsRegistry names process-wide instances: `registry.counter("x")`
// returns a stable reference (create-on-first-use, kind-checked), so hot
// call sites resolve the name once into a function-local static and pay only
// the atomic afterwards. snapshot() captures a point-in-time copy of every
// registered metric; MetricsSnapshot::to_json() is what the BENCH_*.json
// "metrics" block carries.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"

namespace elrec::obs {

/// Monotonic event counter. add()/value()/reset() are relaxed atomics:
/// totals are exact across threads, only inter-thread ordering is
/// unspecified.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void inc() { add(1); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  /// atomic-style spelling kept for call sites migrated from raw atomics.
  std::uint64_t load() const { return value(); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins signed level (queue depth, cache residency, ...).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Point-in-time digest of one Histogram. Unit-agnostic: a histogram of
/// microsecond samples yields microsecond percentiles.
struct HistogramSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Lock-free log-bucketed histogram of non-negative samples.
///
/// Buckets are octaves (powers of two) split into kSubBuckets linear
/// sub-buckets, so percentile estimates carry at most ~1/kSubBuckets
/// relative error — plenty for latency attribution — while record() stays a
/// few relaxed atomic ops with no allocation and no lock. count/mean/max
/// are exact. Replaces the sort-all-samples percentile code that used to
/// live in serve/latency.hpp.
class Histogram {
 public:
  static constexpr int kOctaves = 64;
  static constexpr int kSubBuckets = 8;
  // Octave 0 covers everything below 2^kMinExp (~1e-6); the top octave
  // everything above 2^(kMinExp + kOctaves - 1) (~9e12).
  static constexpr int kMinExp = -20;

  void record(double v);

  std::size_t count() const { return count_.load(std::memory_order_relaxed); }
  HistogramSummary summary() const;
  void reset();

 private:
  static int bucket_index(double v);
  static double bucket_representative(int idx);

  std::atomic<std::uint64_t> buckets_[kOctaves * kSubBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Point-in-time copy of every registered metric (names sorted). Later
/// updates to the live metrics do not alter a snapshot already taken.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSummary>> histograms;

  /// One JSON object:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {"name": {"count": n, "mean": .., "p50": .., ...}}}
  std::string to_json() const;
};

/// Named metric directory. Thread-safe; returned references stay valid for
/// the registry's lifetime (metrics are never deleted), so call sites cache
/// them: `static obs::Counter& c = registry.counter("subsys.event");`.
class MetricsRegistry {
 public:
  /// The process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-on-first-use by name. Throws Error if `name` is already
  /// registered as a different kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every registered metric (names stay registered). For tests and
  /// benchmark sections that want per-phase deltas.
  void reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  void check_kind(const std::string& name, Kind kind) const
      ELREC_REQUIRES(mu_);

  mutable std::mutex mu_;
  std::map<std::string, Kind> kind_of_ ELREC_GUARDED_BY(mu_);
  // unique_ptr nodes keep every returned reference stable across rehashes;
  // the directory maps are guarded, the pointed-to metrics are lock-free.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      ELREC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ ELREC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      ELREC_GUARDED_BY(mu_);
};

}  // namespace elrec::obs
