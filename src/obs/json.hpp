// Minimal JSON reader used to VALIDATE the observability layer's own
// output (chrome traces, metrics snapshots, BENCH_*.json) in tests and the
// trace_check tool. Strict on syntax, deliberately small on features: full
// RFC 8259 value grammar, UTF-8 passed through uninterpreted, \u escapes
// checked for hex-ness but not decoded. Not a general-purpose parser — the
// repo has no other JSON input surface.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace elrec::obs {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  // Insertion-ordered like the document; duplicate keys are a parse error.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses `text` into `out`. Returns "" on success, else a message with the
/// byte offset of the first error. The whole document must be one value
/// (trailing non-whitespace is an error).
std::string parse_json(const std::string& text, JsonValue& out);

}  // namespace elrec::obs
