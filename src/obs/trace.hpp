// Low-overhead span tracing with per-thread ring buffers.
//
// TRACE_SPAN("subsys.stage") opens an RAII span: the constructor reads the
// runtime enable flag and a steady-clock timestamp, the destructor pushes
// one fixed-size event into the calling thread's private ring buffer — no
// locks, no allocation, no shared cache line on the hot path (the enable
// flag is read-mostly). A full ring overwrites its oldest event and counts
// the drop, so tracing a long run keeps the most recent window instead of
// growing without bound.
//
// Two switches:
//  * compile time — the ELREC_TRACING cmake option (default ON) defines
//    ELREC_TRACING_ENABLED; when OFF, TRACE_SPAN expands to a no-op
//    statement and zero tracing code is emitted;
//  * runtime — set_trace_enabled(false) (or env ELREC_TRACING=0/off before
//    first use) turns recording off; spans then cost one relaxed load.
//
// Invariance contract: spans never touch model or optimizer state, so a
// traced training run is bitwise identical to an untraced one
// (tests/test_obs_invariance.cpp holds this at 1 and 8 threads).
//
// Export: export_chrome_trace_json() merges every thread's retained events
// into chrome://tracing "traceEvents" JSON (trace_export.cpp); load it via
// chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace elrec::obs {

/// One completed span. `name` must be a string with static storage duration
/// (TRACE_SPAN passes literals); timestamps are steady-clock nanoseconds.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// Fixed-capacity ring of TraceEvents owned by one thread. push() is
/// single-producer (the owning thread); size()/dropped()/for_each() are for
/// the merger and must only run while the producer is quiescent.
class ThreadTraceBuffer {
 public:
  ThreadTraceBuffer(std::uint32_t tid, std::size_t capacity)
      : tid_(tid), ring_(capacity) {}

  void push(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns) {
    const std::uint64_t n = pushes_.load(std::memory_order_relaxed);
    TraceEvent& slot = ring_[static_cast<std::size_t>(n % ring_.size())];
    slot.name = name;
    slot.start_ns = start_ns;
    slot.dur_ns = dur_ns;
    pushes_.store(n + 1, std::memory_order_relaxed);
  }

  std::uint32_t tid() const { return tid_; }
  std::size_t capacity() const { return ring_.size(); }

  /// Events currently retained (min(total pushes, capacity)).
  std::size_t size() const {
    const std::uint64_t n = pushes_.load(std::memory_order_relaxed);
    return n < ring_.size() ? static_cast<std::size_t>(n) : ring_.size();
  }

  /// Events overwritten after the ring wrapped.
  std::uint64_t dropped() const {
    const std::uint64_t n = pushes_.load(std::memory_order_relaxed);
    return n > ring_.size() ? n - ring_.size() : 0;
  }

  /// Visits retained events oldest-first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::uint64_t n = pushes_.load(std::memory_order_relaxed);
    const std::uint64_t first = n > ring_.size() ? n - ring_.size() : 0;
    for (std::uint64_t i = first; i < n; ++i) {
      fn(ring_[static_cast<std::size_t>(i % ring_.size())]);
    }
  }

  void clear() { pushes_.store(0, std::memory_order_relaxed); }

 private:
  std::uint32_t tid_;
  std::vector<TraceEvent> ring_;
  std::atomic<std::uint64_t> pushes_{0};
};

/// Runtime switch. Reads are one relaxed atomic load. The initial value
/// honors the ELREC_TRACING environment variable ("0"/"off"/"false" →
/// disabled; anything else, or unset → enabled).
bool trace_enabled();
void set_trace_enabled(bool enabled);

/// Ring capacity (events per thread) for buffers created AFTER the call;
/// existing threads keep their rings. Default 8192.
void set_trace_capacity(std::size_t events);

/// Discards every thread's retained events and drop counts. Callers must
/// ensure no thread is mid-push (join workers first).
void clear_trace();

struct TraceStats {
  std::size_t threads = 0;
  std::size_t events_retained = 0;
  std::uint64_t events_dropped = 0;
};
TraceStats trace_stats();

namespace detail {
extern std::atomic<bool> g_trace_enabled;
std::uint64_t trace_now_ns();
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns);
/// Snapshot of every registered thread buffer (stable pointers; buffers are
/// never destroyed before process exit). For the exporter and tests.
std::vector<const ThreadTraceBuffer*> all_buffers();
}  // namespace detail

inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// RAII span: times its scope and records one TraceEvent on destruction.
/// Prefer the TRACE_SPAN macro, which compiles out with the cmake option.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(trace_enabled() ? name : nullptr),
        start_ns_(name_ != nullptr ? detail::trace_now_ns() : 0) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (name_ != nullptr) {
      detail::record_span(name_, start_ns_, detail::trace_now_ns() - start_ns_);
    }
  }

 private:
  const char* name_;
  std::uint64_t start_ns_;
};

// ---- chrome://tracing export (trace_export.cpp) -------------------------

/// Merges every thread's retained events (sorted by start time) into a
/// chrome://tracing JSON document: {"traceEvents": [...], ...}. Call only
/// while producer threads are quiescent.
std::string export_chrome_trace_json();

/// export_chrome_trace_json() to a file; returns false if it can't write.
bool write_chrome_trace(const std::string& path);

/// Structural + schema validation of a chrome-trace JSON document: full
/// JSON syntax check, then "traceEvents" must be an array of objects each
/// carrying name/ph (strings), ts/pid/tid (numbers) and, for "X" events,
/// dur. Returns "" when valid, else a description of the first problem.
std::string validate_chrome_trace(const std::string& json);

}  // namespace elrec::obs

// Span instrumentation macro. When the ELREC_TRACING cmake option is OFF no
// code is emitted — the expansion is a bare no-op statement.
#if defined(ELREC_TRACING_ENABLED)
#define ELREC_OBS_CONCAT2(a, b) a##b
#define ELREC_OBS_CONCAT(a, b) ELREC_OBS_CONCAT2(a, b)
#define TRACE_SPAN(name) \
  ::elrec::obs::TraceSpan ELREC_OBS_CONCAT(elrec_trace_span_, __LINE__)(name)
#else
#define TRACE_SPAN(name) static_cast<void>(0)
#endif
