// Merges the per-thread span rings into chrome://tracing JSON, and
// validates such documents (used by tests and tools/trace_check).
#include <algorithm>
#include <cstdio>
#include <fstream>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace elrec::obs {

namespace {

struct MergedEvent {
  TraceEvent event;
  std::uint32_t tid = 0;
};

std::string escaped(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

}  // namespace

std::string export_chrome_trace_json() {
  std::vector<MergedEvent> merged;
  std::uint64_t dropped = 0;
  for (const ThreadTraceBuffer* buf : detail::all_buffers()) {
    dropped += buf->dropped();
    buf->for_each([&](const TraceEvent& e) {
      merged.push_back({e, buf->tid()});
    });
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const MergedEvent& a, const MergedEvent& b) {
                     return a.event.start_ns < b.event.start_ns;
                   });
  // Timestamps are reported relative to the earliest span so the viewer
  // opens at t=0 instead of hours of steady-clock uptime.
  const std::uint64_t t0 = merged.empty() ? 0 : merged.front().event.start_ns;

  std::string out = "{\"displayTimeUnit\": \"ms\", \"droppedEventCount\": " +
                    std::to_string(dropped) + ",\n\"traceEvents\": [\n";
  char buf[160];
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const MergedEvent& m = merged[i];
    // Complete ("X") events: one record per span, microsecond floats.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"%s\", \"cat\": \"elrec\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 0, \"tid\": %u}",
                  escaped(m.event.name).c_str(),
                  static_cast<double>(m.event.start_ns - t0) / 1e3,
                  static_cast<double>(m.event.dur_ns) / 1e3, m.tid);
    out += buf;
    out += (i + 1 < merged.size()) ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << export_chrome_trace_json();
  return out.good();
}

std::string validate_chrome_trace(const std::string& json) {
  JsonValue doc;
  const std::string err = parse_json(json, doc);
  if (!err.empty()) return "JSON syntax: " + err;
  if (!doc.is_object()) return "top-level value must be an object";
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr) return "missing \"traceEvents\"";
  if (!events->is_array()) return "\"traceEvents\" must be an array";
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    if (!e.is_object()) return at + " is not an object";
    const JsonValue* name = e.find("name");
    if (name == nullptr || !name->is_string() || name->str.empty()) {
      return at + " needs a non-empty string \"name\"";
    }
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->str.empty()) {
      return at + " needs a string \"ph\"";
    }
    for (const char* key : {"ts", "pid", "tid"}) {
      const JsonValue* v = e.find(key);
      if (v == nullptr || !v->is_number()) {
        return at + " needs a numeric \"" + key + "\"";
      }
    }
    if (ph->str == "X") {
      const JsonValue* dur = e.find("dur");
      if (dur == nullptr || !dur->is_number() || dur->number < 0) {
        return at + " (\"X\" span) needs a non-negative numeric \"dur\"";
      }
    }
  }
  return "";
}

}  // namespace elrec::obs
