// Analytic device models for the end-to-end experiments.
//
// The paper measured on AWS p3.8xlarge (4x V100, NVLink) and g4dn.12xlarge
// (4x T4, PCIe). Without GPUs in this environment, iteration times for the
// system-level figures (11/12/13/16) are computed from first-principles
// roofline terms: FLOPs / achieved-FLOP-rate and bytes / bandwidth, with the
// FLOP and byte counts taken from the real implementation's counters. The
// constants below are public datasheet numbers plus standard achieved-
// efficiency factors; DESIGN.md documents the substitution.
#pragma once

#include <string>

namespace elrec {

struct DeviceSpec {
  std::string name;
  double fp32_tflops = 0.0;       // peak fp32
  double hbm_gb = 0.0;            // memory capacity
  double hbm_gbps = 0.0;          // memory bandwidth
  double pcie_gbps = 0.0;         // host <-> device, per direction
  double nvlink_gbps = 0.0;       // device <-> device (0: fall back to PCIe)
  double gemm_efficiency = 0.25;  // achieved fraction of peak for MLP GEMMs
  double small_gemm_efficiency = 0.06;  // TT-slice batched GEMMs
  double kernel_overhead_us = 8.0;      // per kernel launch
};

struct HostSpec {
  std::string name;
  double dram_gbps = 0.0;    // streaming bandwidth
  double gather_gbps = 0.0;  // random-gather bandwidth over huge tables
  double small_gather_gbps = 0.0;  // gather over cache-friendly small tables
  double cpu_gflops = 0.0;         // usable CPU compute
};

/// Nvidia Tesla V100-SXM2 16GB (p3.8xlarge).
DeviceSpec v100();
/// Nvidia Tesla T4 16GB (g4dn.12xlarge).
DeviceSpec t4();
/// Xeon host of the paper's AWS instances.
HostSpec aws_host();

/// Device <-> device bandwidth (NVLink if present, else PCIe).
double inter_gpu_gbps(const DeviceSpec& dev);

}  // namespace elrec
