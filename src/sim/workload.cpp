#include "sim/workload.hpp"

#include "common/error.hpp"

namespace elrec {
namespace {

// Per-table TT geometry at the workload's rank.
struct TTGeom {
  double n1, n2, n3, r1, r2;
  double prefix_flops;  // C1*C2: 2 * n1 * (n2 r2) * r1
  double row_flops;     // P12*C3: 2 * (n1 n2) * n3 * r2
  double backward_flops_per_row;  // the 4 chain-rule GEMMs
  double prefix_bytes;            // slices read + slot written
  double row_bytes;               // slot + C3 slice read, row written
  double backward_bytes_per_row;  // operands + gradient-slice traffic
  double param_floats;
};

TTGeom geometry(index_t rows, index_t dim, index_t rank) {
  const TTShape shape = TTShape::balanced(rows, dim, 3, rank);
  TTGeom g;
  g.n1 = static_cast<double>(shape.col_factor(0));
  g.n2 = static_cast<double>(shape.col_factor(1));
  g.n3 = static_cast<double>(shape.col_factor(2));
  g.r1 = static_cast<double>(shape.rank(1));
  g.r2 = static_cast<double>(shape.rank(2));
  g.prefix_flops = 2.0 * g.n1 * (g.n2 * g.r2) * g.r1;
  g.row_flops = 2.0 * (g.n1 * g.n2) * g.n3 * g.r2;
  // dC3 + W + dC2 + dC1 (see EffTTTable::accumulate_row_gradient).
  g.backward_flops_per_row = 2.0 * g.r2 * g.n3 * (g.n1 * g.n2) +
                             2.0 * (g.n1 * g.n2) * g.r2 * g.n3 +
                             2.0 * g.r1 * (g.n2 * g.r2) * g.n1 +
                             2.0 * g.n1 * g.r1 * (g.n2 * g.r2);
  const double b = sizeof(float);
  const double c1_slice = g.n1 * g.r1 * b;
  const double c2_slice = g.r1 * g.n2 * g.r2 * b;
  const double c3_slice = g.r2 * g.n3 * b;
  const double slot = g.n1 * g.n2 * g.r2 * b;
  const double row = g.n1 * g.n2 * g.n3 * b;
  g.prefix_bytes = c1_slice + c2_slice + slot;
  g.row_bytes = slot + c3_slice + row;
  // Read g + P12 + all three slices; write grads of all three slices.
  g.backward_bytes_per_row =
      row + slot + (c1_slice + c2_slice + c3_slice) * 2.0;
  g.param_floats = static_cast<double>(shape.parameter_count());
  return g;
}

}  // namespace

DlrmWorkload DlrmWorkload::from_spec(const DatasetSpec& spec,
                                     index_t batch_size, index_t emb_dim,
                                     index_t tt_rank) {
  DlrmWorkload w;
  w.batch_size = batch_size;
  w.emb_dim = emb_dim;
  w.num_dense = spec.num_dense;
  w.table_rows = spec.table_rows;
  w.tt_rank = tt_rank;
  // The paper's DLRM configuration: bottom 512-256-64-d, top 512-256-1.
  w.bottom_mlp = {spec.num_dense, 512, 256, 64, emb_dim};
  const index_t f = w.interaction_features();
  w.top_mlp = {emb_dim + f * (f - 1) / 2, 512, 256, 1};
  return w;
}

double DlrmWorkload::embedding_bytes() const {
  double total = 0.0;
  for (index_t r : table_rows) total += static_cast<double>(r);
  return total * emb_dim * sizeof(float);
}

double DlrmWorkload::large_table_bytes() const {
  double total = 0.0;
  for (index_t r : table_rows) {
    if (r >= tt_rows_threshold) total += static_cast<double>(r);
  }
  return total * emb_dim * sizeof(float);
}

index_t DlrmWorkload::num_large_tables() const {
  index_t n = 0;
  for (index_t r : table_rows) n += r >= tt_rows_threshold ? 1 : 0;
  return n;
}

double DlrmWorkload::mlp_flops() const {
  double fwd = 0.0;
  for (std::size_t l = 0; l + 1 < bottom_mlp.size(); ++l) {
    fwd += 2.0 * bottom_mlp[l] * bottom_mlp[l + 1];
  }
  for (std::size_t l = 0; l + 1 < top_mlp.size(); ++l) {
    fwd += 2.0 * top_mlp[l] * top_mlp[l + 1];
  }
  const double f = static_cast<double>(interaction_features());
  const double interact = f * (f - 1) / 2 * 2.0 * emb_dim;
  // fwd + dgrad + wgrad ~ 3x forward cost.
  return 3.0 * (fwd + interact) * batch_size;
}

double DlrmWorkload::embedding_lookup_bytes() const {
  // One index per table per sample (Criteo-style one-hot).
  return static_cast<double>(batch_size) * num_tables() * emb_dim *
         sizeof(float);
}

double DlrmWorkload::pooled_activation_bytes() const {
  return static_cast<double>(batch_size) * num_tables() * emb_dim *
         sizeof(float);
}

double DlrmWorkload::tt_forward_flops(bool reuse) const {
  double total = 0.0;
  for (index_t r : table_rows) {
    if (r < tt_rows_threshold) continue;
    const TTGeom g = geometry(r, emb_dim, tt_rank);
    const double occ = static_cast<double>(batch_size);
    if (reuse) {
      const double uniq = occ * unique_index_ratio;
      const double prefixes = uniq * unique_prefix_ratio;
      total += prefixes * g.prefix_flops + uniq * g.row_flops;
    } else {
      total += occ * (g.prefix_flops + g.row_flops);
    }
  }
  return total;
}

double DlrmWorkload::tt_backward_flops(bool in_advance) const {
  double total = 0.0;
  for (index_t r : table_rows) {
    if (r < tt_rows_threshold) continue;
    const TTGeom g = geometry(r, emb_dim, tt_rank);
    const double occ = static_cast<double>(batch_size);
    if (in_advance) {
      const double uniq = occ * unique_index_ratio;
      // Prefix products are reused from the forward pass.
      total += uniq * g.backward_flops_per_row;
    } else {
      // Per occurrence, including a fresh prefix product each time.
      total += occ * (g.backward_flops_per_row + g.prefix_flops);
    }
  }
  return total;
}

double DlrmWorkload::tt_forward_bytes(bool reuse) const {
  double total = 0.0;
  for (index_t r : table_rows) {
    if (r < tt_rows_threshold) continue;
    const TTGeom g = geometry(r, emb_dim, tt_rank);
    const double occ = static_cast<double>(batch_size);
    if (reuse) {
      const double uniq = occ * unique_index_ratio;
      total += uniq * unique_prefix_ratio * g.prefix_bytes + uniq * g.row_bytes;
    } else {
      total += occ * (g.prefix_bytes + g.row_bytes);
    }
  }
  return total;
}

double DlrmWorkload::tt_backward_bytes(bool in_advance) const {
  double total = 0.0;
  for (index_t r : table_rows) {
    if (r < tt_rows_threshold) continue;
    const TTGeom g = geometry(r, emb_dim, tt_rank);
    const double occ = static_cast<double>(batch_size);
    const double rows_processed =
        in_advance ? occ * unique_index_ratio : occ;
    total += rows_processed * (g.backward_bytes_per_row +
                               (in_advance ? 0.0 : g.prefix_bytes));
  }
  return total;
}

double DlrmWorkload::tt_unfused_update_bytes() const {
  // Gradient staging copy plus the separate optimizer pass over the touched
  // slices (TT-Rec stages gradients before updating; §III-B).
  return 1.0 * tt_parameter_bytes();
}

double DlrmWorkload::tt_kernel_launches(bool reuse) const {
  // Two batched-GEMM launches per large table forward, four backward; the
  // non-reuse path launches the same batched kernels with more products.
  static_cast<void>(reuse);
  return 6.0 * num_large_tables();
}

double DlrmWorkload::small_table_lookup_bytes() const {
  index_t small = 0;
  for (index_t r : table_rows) small += r < tt_rows_threshold ? 1 : 0;
  return static_cast<double>(batch_size) * small * emb_dim * sizeof(float);
}

double DlrmWorkload::tt_parameter_bytes() const {
  double total = 0.0;
  for (index_t r : table_rows) {
    if (r < tt_rows_threshold) continue;
    total += geometry(r, emb_dim, tt_rank).param_floats;
  }
  return total * sizeof(float);
}

}  // namespace elrec
