#include "sim/framework_models.hpp"

#include <algorithm>

#include "pipeline/allreduce.hpp"

namespace elrec {
namespace {

constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;

double gemm_seconds(double flops, const DeviceSpec& dev) {
  return flops / (dev.fp32_tflops * kTera * dev.gemm_efficiency);
}

double hbm_seconds(double bytes, const DeviceSpec& dev) {
  return bytes / (dev.hbm_gbps * kGiga);
}

// TT-slice batched GEMMs are small: roofline of achieved-FLOP rate vs HBM
// traffic, whichever binds.
double tt_kernel_seconds(double flops, double bytes, const DeviceSpec& dev) {
  return std::max(
      flops / (dev.fp32_tflops * kTera * dev.small_gemm_efficiency),
      hbm_seconds(bytes, dev));
}

double pcie_seconds(double bytes, const DeviceSpec& dev) {
  return bytes / (dev.pcie_gbps * kGiga);
}

double launch_seconds(double launches, const DeviceSpec& dev) {
  return launches * dev.kernel_overhead_us * 1e-6;
}

// CPU-side embedding service for one iteration of a PS design: gather the
// rows, pool them, and later scatter the gradient update. Huge tables pay
// the random-access rate; small tables stay cache-resident.
double cpu_embedding_seconds(const DlrmWorkload& w, const HostSpec& host) {
  double seconds = 0.0;
  const double per_table_bytes =
      2.0 * static_cast<double>(w.batch_size) * w.emb_dim * sizeof(float);
  for (index_t rows : w.table_rows) {
    const double rate =
        rows >= w.tt_rows_threshold ? host.gather_gbps : host.small_gather_gbps;
    seconds += per_table_bytes / (rate * kGiga);
  }
  return seconds;
}

double mlp_gpu_seconds(const DlrmWorkload& w, const DeviceSpec& dev) {
  return gemm_seconds(w.mlp_flops(), dev) + launch_seconds(
      3.0 * static_cast<double>(w.bottom_mlp.size() + w.top_mlp.size()), dev);
}

// Dense on-device embedding lookup+update (tables resident in HBM).
double hbm_embedding_seconds(const DlrmWorkload& w, const DeviceSpec& dev) {
  return hbm_seconds(w.embedding_lookup_bytes() + w.embedding_update_bytes(),
                     dev);
}

double elrec_tt_forward_seconds(const DlrmWorkload& w, const DeviceSpec& dev) {
  return tt_kernel_seconds(w.tt_forward_flops(true),
                           w.tt_l2_miss * w.tt_forward_bytes(true), dev) +
         launch_seconds(2.0 * w.num_large_tables(), dev);
}

double elrec_tt_backward_seconds(const DlrmWorkload& w,
                                 const DeviceSpec& dev) {
  return tt_kernel_seconds(w.tt_backward_flops(true),
                           w.tt_l2_miss * w.tt_backward_bytes(true), dev) +
         launch_seconds(4.0 * w.num_large_tables(), dev);
}

}  // namespace

double IterationCost::total_sequential() const {
  double total = 0.0;
  for (const auto& [name, sec] : components) total += sec;
  return total;
}

double IterationCost::total_pipelined() const {
  double cpu = 0.0, gpu = 0.0, serial = 0.0;
  for (const auto& [name, sec] : components) {
    if (name.rfind("cpu:", 0) == 0) {
      cpu += sec;
    } else if (name.rfind("gpu:", 0) == 0) {
      gpu += sec;
    } else {
      serial += sec;
    }
  }
  return std::max(cpu, gpu) + serial;
}

double IterationCost::throughput(index_t batch_size, bool pipelined) const {
  const double t = pipelined ? total_pipelined() : total_sequential();
  return static_cast<double>(batch_size) / t;
}

IterationCost model_dlrm_ps(const DlrmWorkload& w, const DeviceSpec& dev,
                            const HostSpec& host, int num_gpus) {
  IterationCost c;
  c.framework = "DLRM (CPU+GPU)";
  // CPU embedding service; pooled embeddings cross PCIe both ways; GPU MLP.
  c.components["cpu:embedding"] = cpu_embedding_seconds(w, host);
  c.components["cpu:h2d_pooled"] = pcie_seconds(w.pooled_activation_bytes(), dev);
  c.components["cpu:d2h_grads"] = pcie_seconds(w.pooled_activation_bytes(), dev);
  c.components["gpu:mlp"] = mlp_gpu_seconds(w, dev);
  c.components["gpu:framework"] = w.framework_overhead_s;
  // The open-source DLRM PS loop is synchronous — callers price it with
  // total_sequential(). num_gpus only matters for the multi-GPU variant.
  static_cast<void>(num_gpus);
  return c;
}

IterationCost model_fae(const DlrmWorkload& w, const DeviceSpec& dev,
                        const HostSpec& host) {
  IterationCost c;
  c.framework = "FAE";
  const double hot = w.hot_batch_fraction;
  // Hot batches: embeddings served from HBM; cold batches: PS path.
  const IterationCost ps = model_dlrm_ps(w, dev, host, 1);
  // Cold batches hit only rare rows: random access over the full table is
  // even slower than the PS average, and switching between hot and cold
  // phases forces embedding/optimizer-state synchronization.
  const double cold_seconds = 1.35 * ps.total_sequential();
  const double hot_seconds = mlp_gpu_seconds(w, dev) +
                             hbm_embedding_seconds(w, dev) +
                             w.framework_overhead_s;
  c.components["serial:hot_batches"] = hot * hot_seconds;
  c.components["serial:cold_batches"] = (1.0 - hot) * cold_seconds;
  // Input preprocessing / batch classification amortized.
  c.components["serial:classify"] = 0.02 * hot_seconds;
  return c;
}

IterationCost model_ttrec(const DlrmWorkload& w, const DeviceSpec& dev) {
  IterationCost c;
  c.framework = "TT-Rec";
  c.components["gpu:mlp"] = mlp_gpu_seconds(w, dev);
  c.components["gpu:small_tables"] =
      hbm_seconds(2.0 * w.small_table_lookup_bytes(), dev);
  // TT-Rec's fused kernels are priced relative to the Eff-TT kernels using
  // the measured slowdown ratios (validated by bench_fig17/18 against this
  // repo's real implementations of both).
  c.components["gpu:tt_forward"] =
      w.ttrec_forward_slowdown * elrec_tt_forward_seconds(w, dev);
  c.components["gpu:tt_backward"] =
      w.ttrec_backward_slowdown * elrec_tt_backward_seconds(w, dev);
  c.components["gpu:tt_unfused_update"] =
      hbm_seconds(w.tt_unfused_update_bytes(), dev) +
      launch_seconds(2.0 * w.num_large_tables(), dev);
  c.components["gpu:framework"] = w.framework_overhead_s;
  return c;
}

IterationCost model_elrec(const DlrmWorkload& w, const DeviceSpec& dev) {
  IterationCost c;
  c.framework = "EL-Rec";
  c.components["gpu:mlp"] = mlp_gpu_seconds(w, dev);
  c.components["gpu:small_tables"] =
      hbm_seconds(2.0 * w.small_table_lookup_bytes(), dev);
  c.components["gpu:tt_forward"] = elrec_tt_forward_seconds(w, dev);
  c.components["gpu:tt_backward_fused"] = elrec_tt_backward_seconds(w, dev);
  c.components["gpu:framework"] = w.framework_overhead_s;
  return c;
}

IterationCost model_elrec_multi(const DlrmWorkload& w, const DeviceSpec& dev,
                                int num_gpus) {
  // Per-GPU batch shrinks; TT tables replicated -> touched gradient slices
  // all-reduced (half overlapped with the backward pass, as NCCL does).
  DlrmWorkload per = w;
  per.batch_size = w.batch_size / num_gpus;
  IterationCost c = model_elrec(per, dev);
  c.framework = "EL-Rec (" + std::to_string(num_gpus) + " GPU)";
  if (num_gpus > 1) {
    const double grad_bytes = w.tt_grad_sync_fraction *
                              w.tt_parameter_bytes() /
                              w.comm_compression_ratio;
    // Ring all-reduce drives both NVLink directions; half the wire time
    // overlaps the backward pass (NCCL stream overlap); one collective
    // launch per iteration.
    const double wire =
        RingAllReduce::ring_bytes_per_worker(grad_bytes, num_gpus) /
        (2.0 * inter_gpu_gbps(dev) * kGiga);
    c.components["serial:allreduce"] = 0.5 * wire + w.collective_latency_s;
  }
  return c;
}

IterationCost model_dlrm_multi(const DlrmWorkload& w, const DeviceSpec& dev,
                               int num_gpus) {
  IterationCost c;
  c.framework = "DLRM (" + std::to_string(num_gpus) + " GPU)";
  DlrmWorkload per = w;
  per.batch_size = w.batch_size / num_gpus;
  c.components["gpu:mlp"] = mlp_gpu_seconds(per, dev);
  c.components["gpu:framework"] = w.framework_overhead_s;
  if (num_gpus == 1) {
    c.components["gpu:embedding"] = hbm_embedding_seconds(w, dev);
    return c;
  }
  // Tables sharded model-parallel: the GPU owning the hottest tables gathers
  // far more rows than its peers (power-law skew), serializing the phase.
  c.components["gpu:embedding"] =
      w.model_parallel_imbalance * hbm_embedding_seconds(per, dev);
  // Every sample's embeddings cross the interconnect in the forward
  // all-to-all and again as gradients in the backward. The open-source DLRM
  // issues one butterfly-shuffle collective PER TABLE each way (unlike
  // HugeCTR's single fused exchange), so collective launch latency
  // dominates the small payloads.
  const double a2a_bytes = 2.0 * w.pooled_activation_bytes() *
                           (num_gpus - 1) / num_gpus / num_gpus;
  c.components["serial:alltoall"] =
      a2a_bytes / (inter_gpu_gbps(dev) * kGiga) +
      2.0 * w.num_tables() * w.collective_latency_s +
      launch_seconds(2.0 * w.num_tables(), dev);
  return c;
}

IterationCost model_elrec_hybrid(const DlrmWorkload& w, const DeviceSpec& dev,
                                 const HostSpec& host, bool pipelined) {
  IterationCost c;
  c.framework = pipelined ? "EL-Rec (Pipeline)" : "EL-Rec (Sequential)";
  // Largest table(s) TT-compressed on device; the rest host-resident.
  DlrmWorkload host_part = w;
  std::vector<index_t> host_tables;
  for (index_t r : w.table_rows) {
    if (r < w.tt_rows_threshold) host_tables.push_back(r);
  }
  host_part.table_rows = host_tables;
  c.components["cpu:embedding"] = cpu_embedding_seconds(host_part, host);
  // The codec shrinks both PCIe streams (prefetched rows down, gradients
  // up); compute-side terms are untouched.
  c.components["cpu:h2d_prefetch"] = pcie_seconds(
      host_part.pooled_activation_bytes() / w.comm_compression_ratio, dev);
  c.components["cpu:d2h_grads"] = pcie_seconds(
      host_part.pooled_activation_bytes() / w.comm_compression_ratio, dev);
  c.components["gpu:mlp"] = mlp_gpu_seconds(w, dev);
  c.components["gpu:tt_forward"] = elrec_tt_forward_seconds(w, dev);
  c.components["gpu:tt_backward"] = elrec_tt_backward_seconds(w, dev);
  c.components["gpu:framework"] = w.framework_overhead_s;
  // Cache synchronization: patch up to queue-depth batches of rows.
  c.components["gpu:cache_sync"] =
      hbm_seconds(0.1 * host_part.pooled_activation_bytes(), dev);
  return c;
}

IterationCost model_hugectr_large_table(const DlrmWorkload& w,
                                        const DeviceSpec& dev, int num_gpus) {
  IterationCost c;
  c.framework = "HugeCTR (" + std::to_string(num_gpus) + " GPU)";
  // Row-sharded model parallel: each GPU gathers its share of rows, then an
  // all-to-all delivers each sample's embeddings to its data-parallel owner;
  // backward mirrors it. Hash-based row sharding balances hot rows fairly
  // well, so only a mild imbalance factor applies.
  DlrmWorkload per = w;
  per.batch_size = w.batch_size / num_gpus;
  c.components["gpu:embedding_gather"] =
      1.3 * hbm_embedding_seconds(per, dev);
  c.components["gpu:mlp"] = mlp_gpu_seconds(per, dev);
  c.components["gpu:framework"] = w.framework_overhead_s;
  if (num_gpus > 1) {
    // All-to-all decomposes into (num_gpus - 1) peer rounds each way.
    const double a2a = 2.0 * w.pooled_activation_bytes() * (num_gpus - 1) /
                       num_gpus / num_gpus;
    c.components["serial:alltoall"] =
        a2a / (inter_gpu_gbps(dev) * kGiga) +
        2.0 * (num_gpus - 1) * w.collective_latency_s;
  }
  return c;
}

IterationCost model_torchrec_large_table(const DlrmWorkload& w,
                                         const DeviceSpec& dev, int num_gpus) {
  IterationCost c;
  c.framework = "TorchRec (" + std::to_string(num_gpus) + " GPU)";
  // Column-wise sharding: every GPU holds dim/num_gpus columns of ALL rows
  // and gathers the full batch's rows of its shard; an all-gather then
  // reassembles full embeddings (and a reduce-scatter mirrors it backward).
  DlrmWorkload per = w;
  per.batch_size = w.batch_size / num_gpus;
  const double shard_lookup_bytes =
      2.0 * static_cast<double>(w.batch_size) * w.num_tables() *
      (static_cast<double>(w.emb_dim) / num_gpus) * sizeof(float);
  c.components["gpu:shard_gather"] = hbm_seconds(shard_lookup_bytes, dev);
  c.components["gpu:mlp"] = mlp_gpu_seconds(per, dev);
  c.components["gpu:framework"] = w.framework_overhead_s;
  if (num_gpus > 1) {
    const double ag = 2.0 * w.pooled_activation_bytes() * (num_gpus - 1) /
                      num_gpus / num_gpus;
    c.components["serial:allgather"] =
        ag / (inter_gpu_gbps(dev) * kGiga) +
        3.0 * (num_gpus - 1) * w.collective_latency_s;
  }
  // TorchRec's input-dist / sharding-planner machinery adds per-iteration
  // overhead on top of the collectives.
  c.components["serial:input_dist"] = 30.0 * dev.kernel_overhead_us * 1e-6;
  return c;
}

IterationCost model_elrec_large_table(const DlrmWorkload& w,
                                      const DeviceSpec& dev, int num_gpus) {
  IterationCost c = model_elrec_multi(w, dev, num_gpus);
  c.framework = "EL-Rec (" + std::to_string(num_gpus) + " GPU)";
  return c;
}

}  // namespace elrec
