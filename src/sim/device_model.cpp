#include "sim/device_model.hpp"

namespace elrec {

DeviceSpec v100() {
  DeviceSpec d;
  d.name = "Tesla V100";
  d.fp32_tflops = 15.7;
  d.hbm_gb = 16.0;
  d.hbm_gbps = 900.0;
  d.pcie_gbps = 12.0;     // achievable over PCIe 3.0 x16
  d.nvlink_gbps = 150.0;  // per-GPU aggregate on p3.8xlarge
  d.gemm_efficiency = 0.30;
  d.small_gemm_efficiency = 0.15;
  d.kernel_overhead_us = 8.0;
  return d;
}

DeviceSpec t4() {
  DeviceSpec d;
  d.name = "Tesla T4";
  d.fp32_tflops = 8.1;
  d.hbm_gb = 16.0;
  d.hbm_gbps = 320.0;
  d.pcie_gbps = 12.0;
  d.nvlink_gbps = 0.0;  // PCIe only on g4dn
  d.gemm_efficiency = 0.28;
  d.small_gemm_efficiency = 0.12;
  d.kernel_overhead_us = 8.0;
  return d;
}

HostSpec aws_host() {
  HostSpec h;
  h.name = "Xeon host";
  h.dram_gbps = 60.0;
  // Effective random-row-gather rate over a tens-of-GB table, including the
  // PS framework's per-lookup software overhead (the paper's DLRM baseline
  // runs embedding ops through the PyTorch CPU path).
  h.gather_gbps = 1.0;
  // Small tables stay cache/TLB resident; gathers run near DRAM speed.
  h.small_gather_gbps = 4.0;
  h.cpu_gflops = 400.0;
  return h;
}

double inter_gpu_gbps(const DeviceSpec& dev) {
  return dev.nvlink_gbps > 0.0 ? dev.nvlink_gbps : dev.pcie_gbps;
}

}  // namespace elrec
