// Per-iteration operation counts of a DLRM training step.
//
// Every cost model in framework_models.* prices the same workload object.
// The interesting ratios (unique indices per batch, unique TT prefixes per
// batch, hot coverage) are MEASURED from the synthetic datasets / the real
// Eff-TT implementation by the calling bench, so the simulator's inputs are
// grounded in the code that actually runs.
#pragma once

#include <vector>

#include "data/dataset_spec.hpp"
#include "tt/tt_shape.hpp"

namespace elrec {

struct DlrmWorkload {
  index_t batch_size = 4096;
  index_t emb_dim = 64;
  index_t num_dense = 13;
  std::vector<index_t> table_rows;
  std::vector<index_t> bottom_mlp;  // full layer-size chain {in, ..., d}
  std::vector<index_t> top_mlp;     // {in, ..., 1}
  index_t tt_rank = 128;
  index_t tt_rows_threshold = 1000000;  // tables >= this get TT-compressed

  // Measured input statistics. Defaults reflect Criteo-scale skew at batch
  // 4096 (Fig. 4b: unique indices are a small fraction of the batch);
  // benches overwrite them with values measured from the synthetic streams.
  double unique_index_ratio = 0.12;  // unique rows / total indices (Fig. 4b)
  double unique_prefix_ratio = 0.5;  // unique prefixes / unique rows
  double hot_batch_fraction = 0.75;  // FAE: batches trainable purely on GPU

  // TT-Rec kernel slowdowns relative to the Eff-TT kernels. Defaults are
  // the paper's measured ratios (Figs. 17/18), which bench_fig17/18 verify
  // against this repo's real kernels; the sim prices TT-Rec from them
  // rather than from a naive per-occurrence FLOP count (TT-Rec's fused
  // kernels are better than that worst case).
  double ttrec_forward_slowdown = 1.83;
  double ttrec_backward_slowdown = 1.70;
  // Fraction of TT parameters whose gradient slices a data-parallel
  // all-reduce must move per iteration (touched slices only).
  double tt_grad_sync_fraction = 0.5;
  // Fraction of TT-slice HBM traffic that misses L2: the same C2 slices are
  // read by many prefix products in one batched launch.
  double tt_l2_miss = 0.3;
  // Hot-table skew serializes model-parallel embedding gathers onto the
  // GPU owning the hottest shard.
  double model_parallel_imbalance = 3.0;
  // Bytes-on-wire reduction of the gradient/parameter codec (raw bytes /
  // encoded bytes) applied to the host<->device prefetch/gradient streams
  // and the data-parallel all-reduce. 1.0 == no codec. Benches measure the
  // real ratio by round-tripping representative tensors through the
  // src/codec implementation and re-price Figs 11/12 "with codec".
  double comm_compression_ratio = 1.0;
  // Fixed per-iteration framework cost (Python dispatch, data loader,
  // optimizer bookkeeping) common to all PyTorch-based systems.
  double framework_overhead_s = 0.004;
  // Latency of one NCCL collective call (launch + sync), dominating
  // all-to-all cost for small per-table payloads.
  double collective_latency_s = 75e-6;

  static DlrmWorkload from_spec(const DatasetSpec& spec, index_t batch_size,
                                index_t emb_dim, index_t tt_rank);

  index_t num_tables() const { return static_cast<index_t>(table_rows.size()); }
  index_t interaction_features() const { return num_tables() + 1; }

  /// Dense embedding bytes of all tables.
  double embedding_bytes() const;
  /// Bytes of the tables that would be TT-compressed (>= threshold).
  double large_table_bytes() const;
  /// Number of tables over the TT threshold.
  index_t num_large_tables() const;

  /// Forward+backward MLP FLOPs per iteration (weights visited 3x: fwd,
  /// dgrad, wgrad), including the interaction layer's pairwise dots.
  double mlp_flops() const;

  /// Bytes gathered for one iteration of dense embedding lookup (all
  /// tables), counting each index occurrence once.
  double embedding_lookup_bytes() const;
  /// Same for the scatter-update in the backward pass.
  double embedding_update_bytes() const { return embedding_lookup_bytes(); }
  /// Bytes of pooled embeddings shipped host->device per iteration when
  /// embeddings are computed on the host (PS designs).
  double pooled_activation_bytes() const;

  /// TT forward FLOPs for the large tables, per iteration.
  /// `reuse` applies row dedup + prefix sharing (the Eff-TT path).
  double tt_forward_flops(bool reuse) const;
  /// TT backward FLOPs; `in_advance` aggregates per unique row first.
  double tt_backward_flops(bool in_advance) const;
  /// HBM bytes the TT forward/backward kernels move (roofline partner of
  /// the FLOP counts: TT-slice GEMMs are small and often bandwidth-bound).
  double tt_forward_bytes(bool reuse) const;
  double tt_backward_bytes(bool in_advance) const;
  /// Extra bytes moved by the unfused TT update (gradient staging copy +
  /// full-core optimizer sweep), per iteration.
  double tt_unfused_update_bytes() const;
  /// Batched-GEMM kernel launches for the TT path (for launch overhead).
  double tt_kernel_launches(bool reuse) const;

  /// Dense-embedding bytes of the small (non-TT) tables only.
  double small_table_lookup_bytes() const;

  /// TT parameter bytes at the configured rank (all large tables).
  double tt_parameter_bytes() const;
};

}  // namespace elrec
