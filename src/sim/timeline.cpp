#include "sim/timeline.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace elrec {

PipelineSimResult simulate_pipeline(const PipelineSimConfig& config,
                                    index_t num_batches) {
  ELREC_CHECK(config.queue_capacity >= 1, "queue capacity must be >= 1");
  ELREC_CHECK(num_batches >= 1, "need at least one batch");
  ELREC_CHECK(config.jitter >= 0.0 && config.jitter < 1.0,
              "jitter must be in [0, 1)");

  Prng rng(config.jitter_seed);
  auto jittered = [&](double base) {
    if (config.jitter == 0.0) return base;
    return base * (1.0 + config.jitter * rng.uniform(-1.0, 1.0));
  };
  const double server_batch_base =
      config.server_seconds_per_batch + config.transfer_seconds_per_batch;

  // ready[i]: wall time at which batch i sits in the prefetch queue.
  // popped[i]: wall time at which the worker dequeues it (slot frees).
  std::vector<double> ready(static_cast<std::size_t>(num_batches));
  std::vector<double> popped(static_cast<std::size_t>(num_batches));

  PipelineSimResult r;
  double server_clock = 0.0;
  double worker_clock = 0.0;
  for (index_t i = 0; i < num_batches; ++i) {
    // The bounded queue blocks the server until a slot frees: batch i can
    // only be produced once batch i - capacity has been dequeued.
    if (i >= config.queue_capacity) {
      server_clock = std::max(
          server_clock,
          popped[static_cast<std::size_t>(i - config.queue_capacity)]);
    }
    const double server_batch = jittered(server_batch_base);
    server_clock += server_batch;
    r.server_busy_seconds += server_batch;
    ready[static_cast<std::size_t>(i)] = server_clock;

    const double start =
        std::max(worker_clock, ready[static_cast<std::size_t>(i)]);
    r.worker_stall_seconds += start - worker_clock;
    popped[static_cast<std::size_t>(i)] = start;
    const double worker_batch = jittered(config.worker_seconds_per_batch);
    worker_clock = start + worker_batch;
    r.worker_busy_seconds += worker_batch;
  }
  // The server still applies the final gradients; fold into makespan.
  r.makespan_seconds = std::max(worker_clock, server_clock) +
                       config.server_seconds_per_batch;
  return r;
}

}  // namespace elrec
