// Iteration-time cost models of every framework the paper compares
// (Figs. 11, 12, 13, 16). Each model decomposes one training iteration into
// named roofline components so benches can print the breakdown next to the
// bottom-line number.
#pragma once

#include <map>
#include <string>

#include "sim/device_model.hpp"
#include "sim/workload.hpp"

namespace elrec {

struct IterationCost {
  std::string framework;
  // Component name -> seconds. Components tagged "cpu:" / "gpu:" overlap
  // under pipelining; "serial:" components always add.
  std::map<std::string, double> components;

  double total_sequential() const;  // sum of all components
  /// Pipeline steady state: max(cpu stages, gpu stages) + serial stages.
  double total_pipelined() const;

  /// Throughput in samples/s given the workload batch size.
  double throughput(index_t batch_size, bool pipelined = false) const;
};

/// Facebook DLRM (PS baseline): embeddings live in host memory, CPU does
/// lookup + update, GPU trains the MLPs; strictly sequential per iteration.
IterationCost model_dlrm_ps(const DlrmWorkload& w, const DeviceSpec& dev,
                            const HostSpec& host, int num_gpus = 1);

/// FAE: hot embeddings cached in HBM; `hot_batch_fraction` of batches train
/// fully on-GPU, the rest fall back to the PS path.
IterationCost model_fae(const DlrmWorkload& w, const DeviceSpec& dev,
                        const HostSpec& host);

/// TT-Rec: TT tables on the GPU, but no intermediate-result reuse, per-
/// occurrence backward, unfused update.
IterationCost model_ttrec(const DlrmWorkload& w, const DeviceSpec& dev);

/// EL-Rec on a single GPU, everything device-resident (Fig. 11 config).
IterationCost model_elrec(const DlrmWorkload& w, const DeviceSpec& dev);

/// EL-Rec / DLRM with `num_gpus` data-parallel workers (Fig. 12): TT tables
/// replicated, MLP + TT gradients all-reduced; DLRM shards tables
/// model-parallel instead (all-to-all).
IterationCost model_elrec_multi(const DlrmWorkload& w, const DeviceSpec& dev,
                                int num_gpus);
IterationCost model_dlrm_multi(const DlrmWorkload& w, const DeviceSpec& dev,
                               int num_gpus);

/// Fig. 16 configurations: largest table TT-on-device, the rest host-
/// resident behind the prefetch/gradient queues.
IterationCost model_elrec_hybrid(const DlrmWorkload& w, const DeviceSpec& dev,
                                 const HostSpec& host, bool pipelined);

/// Fig. 13 (single 40M x 128 table): HugeCTR row-sharded model parallel,
/// TorchRec column-sharded, EL-Rec TT data parallel.
IterationCost model_hugectr_large_table(const DlrmWorkload& w,
                                        const DeviceSpec& dev, int num_gpus);
IterationCost model_torchrec_large_table(const DlrmWorkload& w,
                                         const DeviceSpec& dev, int num_gpus);
IterationCost model_elrec_large_table(const DlrmWorkload& w,
                                      const DeviceSpec& dev, int num_gpus);

}  // namespace elrec
