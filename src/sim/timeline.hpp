// Discrete pipeline timeline simulator (§V / Fig. 16).
//
// Models the two-agent pipeline exactly as the runtime implements it: a
// server producing prefetched batches into a bounded queue and applying
// pushed gradients, and a worker consuming them. Given per-batch stage
// durations it replays the event order and reports makespan — so the
// sequential/pipelined comparison reflects queue capacity and blocking, not
// just max() vs sum().
#pragma once

#include <vector>

#include "tensor/matrix.hpp"

namespace elrec {

struct PipelineSimConfig {
  index_t queue_capacity = 4;
  double server_seconds_per_batch = 0.0;  // pull + apply-gradients time
  double worker_seconds_per_batch = 0.0;  // sync + compute + push time
  double transfer_seconds_per_batch = 0.0;  // H2D copy (serial with server)
  // Per-batch multiplicative jitter in [1-jitter, 1+jitter] applied to both
  // stages (independent draws). Real stages vary batch to batch — variable
  // unique counts, allocator noise — and absorbing that variance is what
  // queue depth buys beyond depth 1.
  double jitter = 0.0;
  std::uint64_t jitter_seed = 1;
};

struct PipelineSimResult {
  double makespan_seconds = 0.0;
  double server_busy_seconds = 0.0;
  double worker_busy_seconds = 0.0;
  double worker_stall_seconds = 0.0;  // waiting on the prefetch queue
};

/// Replays `num_batches` through the bounded-queue pipeline.
PipelineSimResult simulate_pipeline(const PipelineSimConfig& config,
                                    index_t num_batches);

}  // namespace elrec
