#include "reorder/louvain.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/error.hpp"

namespace elrec {
namespace {

// One Louvain level on `g`: fills community_of (compacted ids) and returns
// whether any vertex moved.
bool local_move_phase(const WeightedGraph& g, std::vector<index_t>& community_of,
                      const LouvainOptions& opts) {
  const index_t n = g.num_vertices;
  const double two_m = 2.0 * g.total_weight;
  if (two_m <= 0.0) {
    community_of.resize(static_cast<std::size_t>(n));
    std::iota(community_of.begin(), community_of.end(), index_t{0});
    return false;
  }

  std::vector<double> k(static_cast<std::size_t>(n));  // weighted degrees
  for (index_t v = 0; v < n; ++v) k[static_cast<std::size_t>(v)] = g.degree(v);

  community_of.resize(static_cast<std::size_t>(n));
  std::iota(community_of.begin(), community_of.end(), index_t{0});
  std::vector<double> sigma_tot = k;  // total degree per community

  bool any_move = false;
  for (int pass = 0; pass < opts.max_local_passes; ++pass) {
    double pass_gain = 0.0;
    bool moved = false;
    for (index_t v = 0; v < n; ++v) {
      const index_t old_c = community_of[static_cast<std::size_t>(v)];
      // Weights from v into each neighboring community.
      std::unordered_map<index_t, double> w_to;
      for (const auto& [u, w] : g.adjacency[static_cast<std::size_t>(v)]) {
        w_to[community_of[static_cast<std::size_t>(u)]] += w;
      }
      // Remove v from its community.
      sigma_tot[static_cast<std::size_t>(old_c)] -= k[static_cast<std::size_t>(v)];

      index_t best_c = old_c;
      double best_gain = 0.0;
      const double w_old = w_to.count(old_c) ? w_to[old_c] : 0.0;
      const double base =
          w_old - sigma_tot[static_cast<std::size_t>(old_c)] *
                      k[static_cast<std::size_t>(v)] / two_m;
      for (const auto& [c, w] : w_to) {
        if (c == old_c) continue;
        const double gain = (w - sigma_tot[static_cast<std::size_t>(c)] *
                                     k[static_cast<std::size_t>(v)] / two_m) -
                            base;
        // Strict improvement required to move; ties broken on community id
        // so the algorithm is deterministic.
        if (gain > best_gain + 1e-12 ||
            (best_c != old_c && std::abs(gain - best_gain) <= 1e-12 &&
             c < best_c)) {
          best_gain = gain;
          best_c = c;
        }
      }
      community_of[static_cast<std::size_t>(v)] = best_c;
      sigma_tot[static_cast<std::size_t>(best_c)] += k[static_cast<std::size_t>(v)];
      if (best_c != old_c) {
        moved = true;
        any_move = true;
        pass_gain += best_gain;
      }
    }
    if (!moved || pass_gain < opts.min_gain) break;
  }

  // Compact community ids.
  std::unordered_map<index_t, index_t> remap;
  for (auto& c : community_of) {
    auto [it, inserted] = remap.try_emplace(c, static_cast<index_t>(remap.size()));
    c = it->second;
  }
  return any_move;
}

// Collapses communities into super-vertices; intra-community edges (and the
// members' own self-loops) become the super-vertex self-loop, which keeps
// the coarse graph's modularity landscape identical to the fine one.
WeightedGraph aggregate(const WeightedGraph& g,
                        const std::vector<index_t>& community_of,
                        index_t num_communities) {
  WeightedGraph coarse;
  coarse.num_vertices = num_communities;
  coarse.adjacency.resize(static_cast<std::size_t>(num_communities));
  std::unordered_map<std::uint64_t, double> edges;
  for (index_t v = 0; v < g.num_vertices; ++v) {
    const index_t cv = community_of[static_cast<std::size_t>(v)];
    if (g.self_loop(v) > 0.0) coarse.add_self_loop(cv, g.self_loop(v));
    for (const auto& [u, w] : g.adjacency[static_cast<std::size_t>(v)]) {
      if (u < v) continue;  // each undirected edge once
      const index_t cu = community_of[static_cast<std::size_t>(u)];
      if (cu == cv) {
        coarse.add_self_loop(cv, w);
        continue;
      }
      const index_t a = std::min(cu, cv);
      const index_t b = std::max(cu, cv);
      edges[(static_cast<std::uint64_t>(a) << 32) |
            static_cast<std::uint64_t>(b)] += w;
    }
  }
  for (const auto& [key, w] : edges) {
    coarse.add_edge(static_cast<index_t>(key >> 32),
                    static_cast<index_t>(key & 0xffffffffULL), w);
  }
  return coarse;
}

}  // namespace

double modularity(const WeightedGraph& graph,
                  const std::vector<index_t>& community_of) {
  const double two_m = 2.0 * graph.total_weight;
  if (two_m <= 0.0) return 0.0;
  std::unordered_map<index_t, double> sigma_tot;
  std::unordered_map<index_t, double> sigma_in;  // 2 * internal weight
  for (index_t v = 0; v < graph.num_vertices; ++v) {
    const index_t cv = community_of[static_cast<std::size_t>(v)];
    sigma_tot[cv] += graph.degree(v);
    sigma_in[cv] += 2.0 * graph.self_loop(v);
    for (const auto& [u, w] : graph.adjacency[static_cast<std::size_t>(v)]) {
      if (community_of[static_cast<std::size_t>(u)] == cv) sigma_in[cv] += w;
    }
  }
  double q = 0.0;
  for (const auto& [c, tot] : sigma_tot) {
    const double in = sigma_in.count(c) ? sigma_in[c] : 0.0;
    q += in / two_m - (tot / two_m) * (tot / two_m);
  }
  return q;
}

LouvainResult louvain(const WeightedGraph& graph, LouvainOptions opts) {
  LouvainResult result;
  result.community_of.resize(static_cast<std::size_t>(graph.num_vertices));
  std::iota(result.community_of.begin(), result.community_of.end(), index_t{0});
  if (graph.num_vertices == 0) return result;

  const WeightedGraph* current = &graph;
  WeightedGraph owned;
  for (int level = 0; level < opts.max_levels; ++level) {
    std::vector<index_t> local;
    const bool moved = local_move_phase(*current, local, opts);
    const index_t num_comm =
        local.empty() ? 0 : *std::max_element(local.begin(), local.end()) + 1;
    // Project the level's communities onto the original vertices.
    for (auto& c : result.community_of) {
      c = local[static_cast<std::size_t>(c)];
    }
    if (!moved || num_comm == current->num_vertices) break;
    owned = aggregate(*current, local, num_comm);
    current = &owned;
  }

  result.num_communities =
      result.community_of.empty()
          ? 0
          : *std::max_element(result.community_of.begin(),
                              result.community_of.end()) +
                1;
  result.modularity = modularity(graph, result.community_of);
  return result;
}

}  // namespace elrec
