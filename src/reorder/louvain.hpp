// Modularity-based community detection (Louvain method) — paper §IV-C.
//
// Two alternating phases: (1) greedy local moves maximizing the modularity
// gain of relocating one vertex into a neighboring community, (2) graph
// coarsening that collapses each community into a super-vertex. Repeats
// until no phase-1 improvement.
#pragma once

#include "reorder/index_graph.hpp"

namespace elrec {

struct LouvainResult {
  std::vector<index_t> community_of;  // per original vertex
  index_t num_communities = 0;
  double modularity = 0.0;
};

struct LouvainOptions {
  int max_levels = 10;       // coarsening rounds
  int max_local_passes = 16; // phase-1 sweeps per level
  double min_gain = 1e-7;    // stop when a full sweep gains less than this
};

LouvainResult louvain(const WeightedGraph& graph, LouvainOptions opts = {});

/// Modularity Q of a given partition (paper's Eq. in §IV-C).
double modularity(const WeightedGraph& graph,
                  const std::vector<index_t>& community_of);

}  // namespace elrec
