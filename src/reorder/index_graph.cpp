#include "reorder/index_graph.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace elrec {

void WeightedGraph::add_edge(index_t u, index_t v, double w) {
  ELREC_DCHECK(u != v);
  adjacency[static_cast<std::size_t>(u)].emplace_back(v, w);
  adjacency[static_cast<std::size_t>(v)].emplace_back(u, w);
  total_weight += w;
}

void WeightedGraph::add_self_loop(index_t v, double w) {
  if (self_weight.empty()) {
    self_weight.assign(static_cast<std::size_t>(num_vertices), 0.0);
  }
  self_weight[static_cast<std::size_t>(v)] += w;
  total_weight += w;
}

double WeightedGraph::degree(index_t v) const {
  double d = 2.0 * self_loop(v);
  for (const auto& [n, w] : adjacency[static_cast<std::size_t>(v)]) d += w;
  return d;
}

IndexGraphBuilder::IndexGraphBuilder(index_t table_rows, double hot_ratio,
                                     index_t max_pairs_per_batch)
    : table_rows_(table_rows),
      hot_ratio_(hot_ratio),
      max_pairs_per_batch_(max_pairs_per_batch),
      access_count_(static_cast<std::size_t>(table_rows), 0) {
  ELREC_CHECK(table_rows > 0, "empty table");
  ELREC_CHECK(hot_ratio >= 0.0 && hot_ratio < 1.0, "hot_ratio in [0, 1)");
}

void IndexGraphBuilder::add_batch(const std::vector<index_t>& batch_indices) {
  std::vector<index_t> set = batch_indices;
  for (index_t idx : set) {
    ELREC_CHECK(idx >= 0 && idx < table_rows_, "index out of range");
    ++access_count_[static_cast<std::size_t>(idx)];
  }
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  batch_sets_.push_back(std::move(set));
  ++num_batches_;
}

IndexGraphResult IndexGraphBuilder::build(Prng& rng) const {
  IndexGraphResult out;

  // Global information: frequency-descending order (Fre_order of Alg. 2).
  out.frequency_order.resize(static_cast<std::size_t>(table_rows_));
  std::iota(out.frequency_order.begin(), out.frequency_order.end(), index_t{0});
  std::stable_sort(out.frequency_order.begin(), out.frequency_order.end(),
                   [&](index_t a, index_t b) {
                     return access_count_[static_cast<std::size_t>(a)] >
                            access_count_[static_cast<std::size_t>(b)];
                   });
  out.num_hot = static_cast<index_t>(hot_ratio_ *
                                     static_cast<double>(table_rows_));

  // Hot indices are clamped out (Alg. 2 line 4); cold ones become vertices.
  out.vertex_of.assign(static_cast<std::size_t>(table_rows_), -1);
  for (index_t r = out.num_hot; r < table_rows_; ++r) {
    const index_t idx = out.frequency_order[static_cast<std::size_t>(r)];
    out.vertex_of[static_cast<std::size_t>(idx)] =
        static_cast<index_t>(out.index_of.size());
    out.index_of.push_back(idx);
  }

  // Local information: co-occurrence edges within each batch (Alg. 2 line 5).
  // Edge weights accumulate over batches through a flat hash of vertex pairs.
  std::unordered_map<std::uint64_t, double> edge_weight;
  for (const auto& set : batch_sets_) {
    std::vector<index_t> cold;
    cold.reserve(set.size());
    for (index_t idx : set) {
      const index_t v = out.vertex_of[static_cast<std::size_t>(idx)];
      if (v >= 0) cold.push_back(v);
    }
    const auto k = static_cast<index_t>(cold.size());
    if (k < 2) continue;
    const index_t all_pairs = k * (k - 1) / 2;
    auto bump = [&](index_t a, index_t b, double w) {
      if (a == b) return;
      if (a > b) std::swap(a, b);
      edge_weight[(static_cast<std::uint64_t>(a) << 32) |
                  static_cast<std::uint64_t>(b)] += w;
    };
    if (all_pairs <= max_pairs_per_batch_) {
      for (index_t i = 0; i < k; ++i) {
        for (index_t j = i + 1; j < k; ++j) bump(cold[static_cast<std::size_t>(i)], cold[static_cast<std::size_t>(j)], 1.0);
      }
    } else {
      // Sample pairs; up-weight so expected total weight matches.
      const double scale = static_cast<double>(all_pairs) /
                           static_cast<double>(max_pairs_per_batch_);
      for (index_t p = 0; p < max_pairs_per_batch_; ++p) {
        const auto i = static_cast<index_t>(rng.uniform_index(
            static_cast<std::uint64_t>(k)));
        const auto j = static_cast<index_t>(rng.uniform_index(
            static_cast<std::uint64_t>(k)));
        bump(cold[static_cast<std::size_t>(i)], cold[static_cast<std::size_t>(j)], scale);
      }
    }
  }

  out.graph.num_vertices = static_cast<index_t>(out.index_of.size());
  out.graph.adjacency.resize(static_cast<std::size_t>(out.graph.num_vertices));
  for (const auto& [key, w] : edge_weight) {
    const auto a = static_cast<index_t>(key >> 32);
    const auto b = static_cast<index_t>(key & 0xffffffffULL);
    out.graph.add_edge(a, b, w);
  }
  return out;
}

}  // namespace elrec
