#include "reorder/bijection.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace elrec {

BijectionResult generate_bijection(const IndexGraphResult& graph_result,
                                   LouvainOptions opts) {
  const auto table_rows =
      static_cast<index_t>(graph_result.vertex_of.size());
  BijectionResult out;
  out.num_hot = graph_result.num_hot;
  out.mapping.assign(static_cast<std::size_t>(table_rows), -1);

  // Global information: hot indices take the front, by frequency rank.
  for (index_t r = 0; r < graph_result.num_hot; ++r) {
    out.mapping[static_cast<std::size_t>(
        graph_result.frequency_order[static_cast<std::size_t>(r)])] = r;
  }

  // Local information: Louvain communities over the cold-index graph.
  const LouvainResult communities = louvain(graph_result.graph, opts);
  out.num_communities = communities.num_communities;
  out.modularity = communities.modularity;

  // Order communities by total vertex degree (densest first), then members
  // by degree; vertices in the same community get consecutive new indices.
  const index_t nc = std::max<index_t>(communities.num_communities, 1);
  std::vector<double> comm_degree(static_cast<std::size_t>(nc), 0.0);
  std::vector<std::vector<index_t>> members(static_cast<std::size_t>(nc));
  for (index_t v = 0; v < graph_result.graph.num_vertices; ++v) {
    const index_t c = communities.community_of[static_cast<std::size_t>(v)];
    comm_degree[static_cast<std::size_t>(c)] += graph_result.graph.degree(v);
    members[static_cast<std::size_t>(c)].push_back(v);
  }
  std::vector<index_t> comm_order(static_cast<std::size_t>(nc));
  std::iota(comm_order.begin(), comm_order.end(), index_t{0});
  std::stable_sort(comm_order.begin(), comm_order.end(),
                   [&](index_t a, index_t b) {
                     return comm_degree[static_cast<std::size_t>(a)] >
                            comm_degree[static_cast<std::size_t>(b)];
                   });

  index_t next = graph_result.num_hot;
  for (index_t c : comm_order) {
    for (index_t v : members[static_cast<std::size_t>(c)]) {
      out.mapping[static_cast<std::size_t>(
          graph_result.index_of[static_cast<std::size_t>(v)])] = next++;
    }
  }
  ELREC_CHECK(next == table_rows, "bijection did not cover every index");

  return out;
}

ReorderPipeline::ReorderPipeline(index_t table_rows, double hot_ratio,
                                 std::uint64_t seed)
    : builder_(table_rows, hot_ratio), rng_(seed) {}

BijectionResult ReorderPipeline::finish(LouvainOptions opts) {
  return generate_bijection(builder_.build(rng_), opts);
}

}  // namespace elrec
