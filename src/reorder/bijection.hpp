// Index-bijection generation — paper §IV-C, Fig. 8.
//
// Combines global information (hot indices keep the leading positions, in
// access-frequency order, so popular rows share TT prefixes) with local
// information (cold indices are laid out community by community, so indices
// that co-occur in batches land on adjacent rows and share prefix products).
#pragma once

#include "reorder/louvain.hpp"

namespace elrec {

struct BijectionResult {
  std::vector<index_t> mapping;  // original index -> new index (a permutation)
  index_t num_hot = 0;
  index_t num_communities = 0;
  double modularity = 0.0;
};

/// End-to-end generator: index graph (already built) -> Louvain ->
/// bijection. Hot indices occupy new positions [0, num_hot) by frequency
/// rank; each community then gets a contiguous block, communities ordered by
/// total access count (denser communities first), members within a community
/// ordered by frequency.
BijectionResult generate_bijection(const IndexGraphResult& graph_result,
                                   LouvainOptions opts = {});

/// Convenience driver used by benches/examples: feeds `num_batches` batches
/// of `table`'s indices from a callback into IndexGraphBuilder and returns
/// the bijection.
class ReorderPipeline {
 public:
  ReorderPipeline(index_t table_rows, double hot_ratio, std::uint64_t seed);

  void add_batch(const std::vector<index_t>& indices) {
    builder_.add_batch(indices);
  }

  BijectionResult finish(LouvainOptions opts = {});

 private:
  IndexGraphBuilder builder_;
  Prng rng_;
};

}  // namespace elrec
