// Index graph construction — paper §IV-C, Algorithm 2.
//
// Vertices are the NON-hot indices of one embedding table; an edge connects
// two indices that appear in the same training batch (local information).
// Hot indices (top hot_ratio by access frequency — global information) are
// excluded: they keep their frequency-rank positions in the final bijection.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/prng.hpp"
#include "tensor/matrix.hpp"

namespace elrec {

/// Weighted undirected graph in adjacency-list form. Self-loops (needed by
/// Louvain's coarsening, where a community's internal edges fold into its
/// super-vertex) are stored separately in self_weight.
struct WeightedGraph {
  index_t num_vertices = 0;
  // adjacency[v] = list of (neighbor, weight); both directions stored.
  std::vector<std::vector<std::pair<index_t, double>>> adjacency;
  std::vector<double> self_weight;  // self-loop weight per vertex (may be empty)
  double total_weight = 0.0;  // sum of edge weights incl. self-loops, each once

  void add_edge(index_t u, index_t v, double w);
  void add_self_loop(index_t v, double w);
  double self_loop(index_t v) const {
    return self_weight.empty() ? 0.0
                               : self_weight[static_cast<std::size_t>(v)];
  }
  /// Weighted degree; a self-loop of weight w contributes 2w.
  double degree(index_t v) const;
};

struct IndexGraphResult {
  WeightedGraph graph;             // over compacted cold-vertex ids
  std::vector<index_t> vertex_of;  // table index -> graph vertex (-1 if hot)
  std::vector<index_t> index_of;   // graph vertex -> table index
  std::vector<index_t> frequency_order;  // all indices, hottest first
  index_t num_hot = 0;
};

class IndexGraphBuilder {
 public:
  /// table_rows: cardinality of the table. hot_ratio: fraction of rows
  /// pinned as hot. max_pairs_per_batch caps the quadratic
  /// self_combinations() of Algorithm 2 on very dense batches (excess pairs
  /// are sampled uniformly; the community structure survives sampling).
  IndexGraphBuilder(index_t table_rows, double hot_ratio,
                    index_t max_pairs_per_batch = 1 << 16);

  /// Feeds one batch worth of indices of this table (Algorithm 2 loop body).
  void add_batch(const std::vector<index_t>& batch_indices);

  /// Finalizes: computes frequency order, splits hot/cold, and assembles the
  /// cold-index co-occurrence graph.
  IndexGraphResult build(Prng& rng) const;

  index_t num_batches_seen() const { return num_batches_; }

 private:
  index_t table_rows_;
  double hot_ratio_;
  index_t max_pairs_per_batch_;
  index_t num_batches_ = 0;
  std::vector<index_t> access_count_;
  // Deduped per-batch index sets, kept for the edge-generation pass (the
  // hot/cold split needs global counts first).
  std::vector<std::vector<index_t>> batch_sets_;
};

}  // namespace elrec
