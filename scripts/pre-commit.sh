#!/usr/bin/env bash
# Fast pre-commit gate: elrec-lint over the *staged* files only.
#
# Per-file rules run on exactly the staged set; the cross-TU rules
# (lock-order-graph, blocking-under-lock, layering-dag,
# fault-site-coverage) need the whole tree to resolve symbols, so when any
# lintable file is staged we widen that pass to src/ tests/ tools/ — still
# a sub-second scan, and the only way a cross-TU regression introduced by
# the staged change can surface.
#
# Install:  ln -s ../../scripts/pre-commit.sh .git/hooks/pre-commit
# Skip once: git commit --no-verify
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

BUILD_DIR=${BUILD_DIR:-build}
LINT="$BUILD_DIR/tools/elrec_lint"
if [[ ! -x "$LINT" ]]; then
  echo "pre-commit: $LINT not built; run 'cmake --build $BUILD_DIR --target elrec_lint'" >&2
  exit 1
fi

# Staged, still-existing, lintable files (ACMR = added/copied/modified/renamed).
mapfile -t staged < <(git diff --cached --name-only --diff-filter=ACMR \
  | grep -E '\.(hpp|h|hh|hxx|cpp|cc|cxx)$' || true)

manifest_touched=$(git diff --cached --name-only --diff-filter=ACMRD \
  | grep -cE '^tools/(fault_sites|trace_spans)\.manifest$' || true)

if [[ ${#staged[@]} -eq 0 && "$manifest_touched" -eq 0 ]]; then
  exit 0  # nothing lintable staged
fi

if [[ ${#staged[@]} -gt 0 ]]; then
  echo "== pre-commit: per-file lint on ${#staged[@]} staged file(s) =="
  # Cross-TU rules are disabled here (a partial tree would resolve wrongly);
  # the full-tree pass below covers them.
  "$LINT" "${staged[@]}" \
    --rule determinism-rand --rule nondeterministic-reduction \
    --rule atomics-ordering --rule iostream-in-lib --rule lock-discipline \
    --rule header-hygiene --rule trace-span-coverage --rule nolint-rationale
fi

echo "== pre-commit: cross-TU rules over the tree =="
"$LINT" src tests tools \
  --rule lock-order-graph --rule blocking-under-lock \
  --rule layering-dag --rule fault-site-coverage

echo "pre-commit lint OK"
