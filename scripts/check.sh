#!/usr/bin/env bash
# Tier-1 verification gate: configure + build + full ctest, then re-run the
# concurrency suites selected by the "sanitize" label (the ones worth a
# second pass under -DELREC_SANITIZE=thread|address builds).
#
#   scripts/check.sh                 # default build dir ./build
#   scripts/check.sh --obs           # observability smoke: traced mini-train,
#                                    # schema-check the chrome trace, require
#                                    # the metrics block in the BENCH json
#   scripts/check.sh --analyze       # static-analysis matrix: elrec_lint
#                                    # (per-file + cross-TU rules) over
#                                    # src/ tests/ tools/ + lint unit tests,
#                                    # then the sanitize-labelled suites
#                                    # rebuilt under TSan, ASan and UBSan
#                                    # (build-tsan/, build-asan/, build-ubsan/)
#   scripts/check.sh --shard         # sharded-serving smoke: 3 shards +
#                                    # failover router, 5k requests, one
#                                    # injected kill mid-stream, then the
#                                    # sanitize-labelled shard/router suites
#   scripts/check.sh --codec         # codec smoke: gated bench_codec run
#                                    # (bytes-on-queue reduction + loss delta
#                                    # vs the null codec), then the codec
#                                    # round-trip/checkpoint/all-reduce suites
#   scripts/check.sh --online        # online-training smoke: online_demo
#                                    # (train->checkpoint->promote loop with
#                                    # live clients + one injected promoter
#                                    # kill), the online/drift suites, then
#                                    # the full promotion soak (the "soak"
#                                    # ctest label tier-1 excludes)
#   BUILD_DIR=build-tsan scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}

MODE=${1:-}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"

if [[ "$MODE" == "--obs" ]]; then
  echo "== observability smoke: traced mini-train =="
  # bench_fig16_pipeline --quick drives the real ElRecTrainer with tracing
  # on and writes both artifacts next to the binary.
  (cd "$BUILD_DIR/bench" && ./bench_fig16_pipeline --quick)

  echo "== trace schema + span coverage (pipeline / Eff-TT / tensor) =="
  "$BUILD_DIR/tools/trace_check" "$BUILD_DIR/bench/TRACE_fig16_pipeline.json" \
    elrec. efftt. tensor.

  echo "== BENCH json carries the metrics registry snapshot =="
  grep -q '"metrics"' "$BUILD_DIR/bench/BENCH_fig16_pipeline.json" \
    || { echo "BENCH_fig16_pipeline.json missing \"metrics\" block" >&2; exit 1; }
  echo "observability smoke OK"
  exit 0
fi

if [[ "$MODE" == "--analyze" ]]; then
  echo "== elrec-lint: per-file + cross-TU rules over src/ tests/ tools/ =="
  # Soft defaults pick up tools/elrec_lint_baseline.txt,
  # tools/trace_spans.manifest and tools/fault_sites.manifest from the repo
  # root; exits 1 on any fresh finding. The scan covers tests/ and tools/
  # because the fault-site manifest audits sites *armed* there, and the
  # cross-TU index wants every definition. NOLINT at the site (with a
  # `: reason` tail — the nolint-rationale rule insists) is the sanctioned
  # escape hatch; the shipped baseline stays empty.
  "$BUILD_DIR/tools/elrec_lint" src tests tools --index-stats

  echo "== lint unit tests (lexer, rules, index, cross-TU, driver) =="
  ctest --test-dir "$BUILD_DIR" -L lint --output-on-failure -j"$JOBS"

  # Sanitizer matrix: rebuild the tree under each sanitizer and rerun the
  # concurrency-heavy suites. GCC/clang keep the sanitizer runtimes
  # separate, so each mode gets its own build dir.
  for san in thread address undefined; do
    san_dir="build-${san}"
    case "$san" in
      thread)    san_dir="build-tsan"  ;;
      address)   san_dir="build-asan"  ;;
      undefined) san_dir="build-ubsan" ;;
    esac
    echo "== sanitizer matrix: ELREC_SANITIZE=${san} (${san_dir}) =="
    cmake -B "$san_dir" -S . -DELREC_SANITIZE="$san"
    cmake --build "$san_dir" -j"$JOBS"
    ctest --test-dir "$san_dir" -L sanitize --output-on-failure -j"$JOBS"
    # The promotion soak (>= 3 hot swaps under sustained client load) is the
    # data-race honeypot this matrix exists for; run it under every mode.
    ctest --test-dir "$san_dir" -L soak --output-on-failure
  done

  echo "analyze matrix OK (lint + TSan + ASan + UBSan)"
  exit 0
fi

if [[ "$MODE" == "--shard" ]]; then
  echo "== sharded serving smoke: 3 shards + failover router, one kill =="
  # shard_demo --smoke routes 5k requests through the scatter/gather tier,
  # kills a shard mid-stream, and exits non-zero unless every accepted
  # request is answered and the revived shard rejoins. ELREC_FAULT_SITES
  # additionally sprinkles retryable faults over the serve path to exercise
  # the env-var fault configuration end to end.
  ELREC_FAULT_SITES='shard.serve:0.02:transient' \
    "$BUILD_DIR/examples/shard_demo" --smoke

  echo "== sanitize-labelled shard/router suites =="
  ctest --test-dir "$BUILD_DIR" -L sanitize -R 'HashRing|Placement|MergeHotRows|Shard' \
    --output-on-failure -j"$JOBS"
  echo "shard smoke OK"
  exit 0
fi

if [[ "$MODE" == "--codec" ]]; then
  echo "== codec smoke: null vs dual-level on the real pipeline =="
  # bench_codec --quick trains the Fig. 16 workload under the null and
  # dual-level codecs and exits non-zero unless the dual-int4 arm cuts
  # bytes-on-queue >= 4x with the final loss inside the error budget (the
  # null arm is the bitwise-identity reference).
  (cd "$BUILD_DIR/bench" && ./bench_codec --quick)

  echo "== sanitize-labelled codec suites =="
  # Round-trip edge cases, corruption detection, thread-count determinism,
  # checkpoint codec provenance, cache precision, compressed all-reduce.
  ctest --test-dir "$BUILD_DIR" -L sanitize -R 'Codec' \
    --output-on-failure -j"$JOBS"
  echo "codec smoke OK"
  exit 0
fi

if [[ "$MODE" == "--online" ]]; then
  echo "== online-training smoke: train -> checkpoint -> promote, live =="
  # online_demo --smoke runs the closed loop end to end: continuous trainer
  # on the drifting stream, scheduled promotions under client load, one
  # promoter kill at the commit fault site (armed through ELREC_FAULT_SITES
  # semantics inside the demo), and exits non-zero unless every accepted
  # request is answered by a coherent generation.
  "$BUILD_DIR/examples/online_demo" --smoke

  echo "== online/drift/cache sanitize suites =="
  ctest --test-dir "$BUILD_DIR" -L sanitize \
    -R 'HotSwap|ModelPromoter|OnlineTrainer|Drift|AccessStats|ServingCache' \
    --output-on-failure -j"$JOBS"

  echo "== promotion soak (>= 3 hot swaps under sustained load) =="
  ctest --test-dir "$BUILD_DIR" -L soak --output-on-failure
  echo "online smoke OK"
  exit 0
fi

echo "== tier-1: full test suite (soak excluded — see --online) =="
ctest --test-dir "$BUILD_DIR" -LE soak --output-on-failure -j"$JOBS"

echo "== sanitize-labelled concurrency suites =="
ctest --test-dir "$BUILD_DIR" -L sanitize --output-on-failure -j"$JOBS"
