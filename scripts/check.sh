#!/usr/bin/env bash
# Tier-1 verification gate: configure + build + full ctest, then re-run the
# concurrency suites selected by the "sanitize" label (the ones worth a
# second pass under -DELREC_SANITIZE=thread|address builds).
#
#   scripts/check.sh                 # default build dir ./build
#   BUILD_DIR=build-tsan scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"

echo "== tier-1: full test suite =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

echo "== sanitize-labelled concurrency suites =="
ctest --test-dir "$BUILD_DIR" -L sanitize --output-on-failure -j"$JOBS"
