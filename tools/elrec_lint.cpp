// elrec_lint — project-invariant static analysis for the EL-Rec tree.
//
//   tools/elrec_lint [options] <path>...        (paths: files or dirs)
//
// Options:
//   --format text|json        report style (default text)
//   --baseline FILE           findings baseline (default
//                             tools/elrec_lint_baseline.txt if it exists)
//   --write-baseline          rewrite the baseline to absorb every current
//                             finding, then exit 0
//   --trace-manifest FILE     TRACE_SPAN coverage manifest (default
//                             tools/trace_spans.manifest if it exists)
//   --fault-manifest FILE     fault-site coverage manifest (default
//                             tools/fault_sites.manifest if it exists)
//   --rule NAME               run only this rule (repeatable; per-file or
//                             cross-TU)
//   --list-rules              print the rule catalogue and exit
//   --jobs N                  per-file scan thread count (default: auto;
//                             the report is identical at any N)
//   --graph-dot FILE          dump the cross-TU lock-order graph as
//                             Graphviz to FILE ('-' = stdout)
//   --index-stats             print ProjectIndex summary stats to stdout
//   --prune-baseline          drop baseline entries that no longer match
//                             any current finding, rewrite, exit 0
//
// Exit status: 0 = clean, 1 = new findings, 2 = usage/configuration error.
//
// Defaults resolve relative to the current directory, so run it from the
// repo root: `tools/elrec_lint src/` (or via `ctest -L lint`).
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analyze/driver.hpp"

namespace {

constexpr const char* kDefaultBaseline = "tools/elrec_lint_baseline.txt";
constexpr const char* kDefaultManifest = "tools/trace_spans.manifest";
constexpr const char* kDefaultFaultManifest = "tools/fault_sites.manifest";

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--format text|json] [--baseline FILE] "
               "[--write-baseline] [--prune-baseline]\n"
               "       [--trace-manifest FILE] [--fault-manifest FILE] "
               "[--rule NAME]... [--list-rules]\n"
               "       [--jobs N] [--graph-dot FILE] [--index-stats] "
               "<path>...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace elrec::analyze;

  LintOptions opt;
  std::string format = "text";
  bool write_baseline = false;
  bool prune_baseline = false;
  bool baseline_set = false;
  bool manifest_set = false;
  bool fault_manifest_set = false;
  std::string graph_dot_path;

  const RuleRegistry registry = RuleRegistry::with_builtin_rules();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--format") {
      const char* v = next();
      if (v == nullptr || (std::string(v) != "text" && std::string(v) != "json"))
        return usage(argv[0]);
      format = v;
    } else if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.baseline_path = v;
      baseline_set = true;
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--trace-manifest") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.trace_manifest_path = v;
      manifest_set = true;
    } else if (arg == "--fault-manifest") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.fault_manifest_path = v;
      fault_manifest_set = true;
    } else if (arg == "--rule") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      if (registry.find(v) == nullptr && registry.find_project(v) == nullptr) {
        std::fprintf(stderr, "elrec_lint: unknown rule '%s' (--list-rules)\n",
                     v);
        return 2;
      }
      opt.only_rules.emplace_back(v);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.jobs = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--graph-dot") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      graph_dot_path = v;
      opt.want_graph_dot = true;
    } else if (arg == "--index-stats") {
      opt.want_index_stats = true;
    } else if (arg == "--prune-baseline") {
      prune_baseline = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : registry.rules()) {
        std::printf("elrec-%-28s %s\n", std::string(r->name()).c_str(),
                    std::string(r->description()).c_str());
      }
      for (const auto& r : registry.project_rules()) {
        std::printf("elrec-%-28s [cross-TU] %s\n",
                    std::string(r->name()).c_str(),
                    std::string(r->description()).c_str());
      }
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      opt.paths.push_back(arg);
    }
  }
  if (opt.paths.empty()) return usage(argv[0]);

  // Soft defaults: picked up only when present, so the bare invocation
  // `tools/elrec_lint src/` works from the repo root and the tool still
  // runs anywhere else.
  if (!baseline_set && std::filesystem::exists(kDefaultBaseline)) {
    opt.baseline_path = kDefaultBaseline;
  }
  if (!manifest_set && std::filesystem::exists(kDefaultManifest)) {
    opt.trace_manifest_path = kDefaultManifest;
  }
  if (!fault_manifest_set && std::filesystem::exists(kDefaultFaultManifest)) {
    opt.fault_manifest_path = kDefaultFaultManifest;
  }

  try {
    if (write_baseline) {
      // Baseline everything currently fresh (NOLINT suppressions stay
      // honored — a suppressed finding needs no baseline entry).
      LintOptions all = opt;
      all.baseline_path.clear();
      const LintResult result = run_lint(registry, all);
      const std::string path =
          opt.baseline_path.empty() ? kDefaultBaseline : opt.baseline_path;
      std::ofstream out(path);
      out << Baseline::from_findings(result.fresh).serialize();
      if (!out.good()) {
        std::fprintf(stderr, "elrec_lint: cannot write %s\n", path.c_str());
        return 2;
      }
      std::printf("elrec_lint: baselined %zu finding(s) into %s\n",
                  result.fresh.size(), path.c_str());
      return 0;
    }

    if (prune_baseline) {
      // Re-run without the baseline so every still-firing finding is
      // visible, then keep only the entries one of them matches.
      LintOptions all = opt;
      all.baseline_path.clear();
      const LintResult result = run_lint(registry, all);
      const std::string path =
          opt.baseline_path.empty() ? kDefaultBaseline : opt.baseline_path;
      const BaselinePrune pruned =
          Baseline::load(path).retain_matching(result.fresh);
      std::ofstream out(path);
      out << pruned.kept.serialize();
      if (!out.good()) {
        std::fprintf(stderr, "elrec_lint: cannot write %s\n", path.c_str());
        return 2;
      }
      std::printf("elrec_lint: pruned %zu stale entr%s from %s (%zu kept)\n",
                  pruned.removed, pruned.removed == 1 ? "y" : "ies",
                  path.c_str(), pruned.kept.size());
      return 0;
    }

    const LintResult result = run_lint(registry, opt);
    if (!result.lock_graph_dot.empty()) {
      if (graph_dot_path == "-") {
        std::fputs(result.lock_graph_dot.c_str(), stdout);
      } else {
        std::ofstream out(graph_dot_path);
        out << result.lock_graph_dot;
        if (!out.good()) {
          std::fprintf(stderr, "elrec_lint: cannot write %s\n",
                       graph_dot_path.c_str());
          return 2;
        }
      }
    }
    if (!result.index_stats.empty()) {
      std::fputs(result.index_stats.c_str(), stdout);
    }
    const std::string report = format == "json"
                                   ? report_json(result.fresh, result.summary)
                                   : report_text(result.fresh, result.summary);
    std::fputs(report.c_str(), stdout);
    return result.fresh.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "elrec_lint: %s\n", e.what());
    return 2;
  }
}
