// Schema checker for exported chrome://tracing JSON files.
//
//   trace_check TRACE.json [required-name-prefix ...]
//
// Validates JSON syntax and the traceEvents schema; with prefixes given,
// additionally requires at least one span whose name starts with each
// prefix (so CI can assert that a trace covers the expected subsystems).
// Exit 0 on success, 1 on any failure, with the reason on stderr.
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace_check TRACE.json [name-prefix ...]\n");
    return 1;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const std::string err = elrec::obs::validate_chrome_trace(text);
  if (!err.empty()) {
    std::fprintf(stderr, "trace_check: %s: %s\n", argv[1], err.c_str());
    return 1;
  }

  elrec::obs::JsonValue doc;
  elrec::obs::parse_json(text, doc);  // validated above; cannot fail now
  const elrec::obs::JsonValue* events = doc.find("traceEvents");

  std::set<std::string> missing;
  for (int i = 2; i < argc; ++i) missing.insert(argv[i]);
  for (const elrec::obs::JsonValue& e : events->array) {
    const std::string& name = e.find("name")->str;
    for (auto it = missing.begin(); it != missing.end();) {
      if (name.rfind(*it, 0) == 0) {
        it = missing.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (!missing.empty()) {
    for (const std::string& p : missing) {
      std::fprintf(stderr, "trace_check: %s: no span named %s*\n", argv[1],
                   p.c_str());
    }
    return 1;
  }
  std::printf("trace_check: %s OK (%zu events)\n", argv[1],
              events->array.size());
  return 0;
}
