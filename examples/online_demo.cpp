// Online-training demo: the closed train -> checkpoint -> promote loop with
// zero serving downtime.
//
// A continuous trainer consumes the drifting Criteo-like stream (the hot
// set migrates on a seeded schedule) and emits a checksummed checkpoint
// every N batches; the checkpoint hook hands each one to the ModelPromoter,
// which restores it, warms its serving caches from the live AccessStats
// snapshot, and hot-swaps it behind the HotSwapBackend seam — all while
// client threads keep a RequestScheduler under sustained Zipf load. One
// promotion attempt is killed at the commit fault site (the same
// ELREC_FAULT_SITES grammar production binaries honor) to show the old
// generation keeps serving and the loop recovers.
//
//   ./online_demo            (~10s, 5 promotions)
//   ./online_demo --smoke    tiny run for scripts/check.sh --online
//                            (3 promotions, 1 injected promoter kill)
//
// Exits non-zero on any accepted-request loss, a promotion shortfall, or a
// response outside [0, 1].
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/fault_injector.hpp"
#include "core/eff_tt_table.hpp"
#include "data/drift.hpp"
#include "dlrm/model_checkpoint.hpp"
#include "obs/metrics.hpp"
#include "online/hot_swap_backend.hpp"
#include "online/model_promoter.hpp"
#include "online/online_trainer.hpp"
#include "serve/request_scheduler.hpp"

using namespace elrec;

namespace {

DatasetSpec demo_spec(bool smoke) {
  DatasetSpec spec;
  spec.name = "online-demo";
  spec.num_dense = 13;
  spec.table_rows = smoke ? std::vector<index_t>{8000, 2000}
                          : std::vector<index_t>{20000, 8000};
  spec.num_samples = 1 << 22;
  spec.zipf_s = 1.05;
  return spec;
}

std::unique_ptr<DlrmModel> make_model(const DatasetSpec& spec,
                                      std::uint64_t seed) {
  Prng rng(seed);
  DlrmConfig cfg;
  cfg.num_dense = spec.num_dense;
  cfg.embedding_dim = 16;
  cfg.bottom_hidden = {64, 32};
  cfg.top_hidden = {64, 32};
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  for (index_t rows : spec.table_rows) {
    tables.push_back(std::make_unique<EffTTTable>(
        rows, TTShape::balanced(rows, cfg.embedding_dim, 3, 16), rng));
  }
  return std::make_unique<DlrmModel>(cfg, std::move(tables), rng);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const DatasetSpec spec = demo_spec(smoke);
  const int target_promotions = smoke ? 3 : 5;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "elrec_online_demo").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // --- Phase 1: bootstrap the first serving generation. ------------------
  DriftScheduleConfig drift;
  drift.period_batches = smoke ? 20 : 50;
  drift.max_step_fraction = 0.05;
  DriftingDataset stream(spec, 2, drift);

  OnlineTrainerConfig tcfg;
  tcfg.batch_size = 128;
  tcfg.checkpoint_every_n = smoke ? 30 : 80;
  tcfg.checkpoint_dir = dir;
  tcfg.stats_decay_every_n = 200;
  OnlineTrainer trainer(make_model(spec, 1), stream, tcfg);

  std::printf("bootstrapping: training %d batches...\n", smoke ? 30 : 80);
  trainer.train_batches(tcfg.checkpoint_every_n);
  const std::string ckpt0 = trainer.latest_checkpoint();
  std::printf("  loss %.4f, first checkpoint %s\n", trainer.stats().last_loss,
              ckpt0.c_str());

  ModelPromoterConfig pcfg;
  pcfg.session.cache.capacity = 2048;
  pcfg.session.cache.admit_min_freq = 2;
  pcfg.warm_top_k = 1024;
  auto gen0 = std::make_shared<ServingGeneration>();
  gen0->id = 0;
  gen0->checkpoint_path = ckpt0;
  {
    auto m = make_model(spec, 99);  // fresh init, overwritten by restore
    load_dlrm_model(*m, ckpt0);
    gen0->session =
        std::make_unique<InferenceSession>(std::move(m), pcfg.session);
  }
  HotSwapBackend backend(std::move(gen0));
  ModelPromoter promoter(
      backend, [&spec] { return make_model(spec, 12345); }, pcfg);

  // --- Phase 2: serve while training and promoting continuously. ---------
  RequestSchedulerConfig qcfg;
  qcfg.num_workers = 3;
  qcfg.max_batch = 16;
  qcfg.max_wait_us = 100;
  qcfg.queue_capacity = 512;
  RequestScheduler sched(backend, qcfg);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad_probs{0};
  std::atomic<std::uint64_t> client_served{0};
  constexpr int kClients = 2;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SyntheticDataset data(spec, 40 + static_cast<std::uint64_t>(c));
      Prng rng(70 + static_cast<std::uint64_t>(c));
      while (!stop.load(std::memory_order_acquire)) {
        RankingRequest req;
        req.dense.resize(static_cast<std::size_t>(spec.num_dense));
        for (auto& v : req.dense) {
          v = static_cast<float>(rng.uniform(-1.0, 1.0));
        }
        req.sparse.resize(spec.table_rows.size());
        for (index_t t = 0; t < backend.num_tables(); ++t) {
          req.sparse[static_cast<std::size_t>(t)].push_back(
              data.sampler(t).sample(rng));
        }
        std::future<RankingResponse> fut;
        if (sched.submit(req, fut) != SubmitStatus::kAccepted) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        const RankingResponse resp = fut.get();
        client_served.fetch_add(1, std::memory_order_relaxed);
        if (resp.prob < 0.0f || resp.prob > 1.0f) {
          bad_probs.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Kill exactly one promotion at the commit point: built generation
  // abandoned, old one keeps serving, the next emit promotes cleanly.
  FaultInjector::instance().arm_from_string("online.promote.commit:1:error:1");
  std::printf("armed online.promote.commit (first promotion will be killed)\n");

  std::atomic<int> killed{0};
  trainer.start([&](const std::string& path, std::uint64_t seq) {
    try {
      const std::uint64_t id = promoter.promote(path, &trainer.access_stats());
      std::printf("promoted checkpoint %llu -> generation %llu "
                  "(offset[0]=%lld)\n",
                  static_cast<unsigned long long>(seq),
                  static_cast<unsigned long long>(id),
                  static_cast<long long>(stream.current_offset(0)));
    } catch (const InjectedFault&) {
      killed.fetch_add(1, std::memory_order_relaxed);
      std::printf("promotion of checkpoint %llu killed at commit; "
                  "generation %llu keeps serving\n",
                  static_cast<unsigned long long>(seq),
                  static_cast<unsigned long long>(backend.generation_id()));
    }
  });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(smoke ? 60 : 120);
  while (promoter.stats().promotions <
             static_cast<std::uint64_t>(target_promotions) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  trainer.stop();
  stop.store(true, std::memory_order_release);
  for (auto& th : clients) th.join();
  sched.shutdown();
  FaultInjector::instance().reset();

  // --- Phase 3: report and verify. ---------------------------------------
  const auto ts = trainer.stats();
  const auto ps = promoter.stats();
  const auto qs = sched.stats();
  const auto swap_summary =
      obs::MetricsRegistry::global().histogram("online.swap_us").summary();
  std::printf("\ntrained %llu batches (%llu checkpoints), final loss %.4f\n",
              static_cast<unsigned long long>(ts.batches),
              static_cast<unsigned long long>(ts.checkpoints), ts.last_loss);
  std::printf("promotions: %llu ok, %llu killed; swap p50 %.0fus p99 %.0fus; "
              "drain timeouts %llu\n",
              static_cast<unsigned long long>(ps.promotions),
              static_cast<unsigned long long>(ps.failed),
              swap_summary.p50, swap_summary.p99,
              static_cast<unsigned long long>(ps.drain_timeouts));
  std::printf("serving generation %llu; cache hit rate %.2f\n",
              static_cast<unsigned long long>(backend.generation_id()),
              backend.current()->session->cache_hit_rate());
  std::printf("served %zu requests (%zu shed at admission)\n", qs.served,
              qs.shed);

  std::filesystem::remove_all(dir);

  bool ok = true;
  if (qs.accepted != qs.served) {
    std::printf("FAIL: %zu accepted requests were lost\n",
                qs.accepted - qs.served);
    ok = false;
  }
  if (ps.promotions < static_cast<std::uint64_t>(target_promotions)) {
    std::printf("FAIL: only %llu/%d promotions landed before the deadline\n",
                static_cast<unsigned long long>(ps.promotions),
                target_promotions);
    ok = false;
  }
  if (killed.load(std::memory_order_relaxed) != 1) {
    std::printf("FAIL: commit fault fired %d times (expected 1)\n",
                killed.load(std::memory_order_relaxed));
    ok = false;
  }
  if (backend.generation_id() != ps.promotions) {
    std::printf("FAIL: serving generation %llu != successful promotions\n",
                static_cast<unsigned long long>(backend.generation_id()));
    ok = false;
  }
  if (bad_probs.load(std::memory_order_relaxed) != 0) {
    std::printf("FAIL: %llu responses outside [0,1]\n",
                static_cast<unsigned long long>(
                    bad_probs.load(std::memory_order_relaxed)));
    ok = false;
  }
  if (!ok) return 1;
  std::printf("zero downtime, zero loss across %d promotions + 1 injected "
              "kill. done.\n",
              target_promotions);
  return 0;
}
