// Train a full DLRM on a Criteo-Kaggle-like synthetic stream with Eff-TT
// embedding tables for every large table.
//
//   $ ./train_criteo_like [num_batches] [batch_size]
//
// Prints the loss curve and final accuracy/AUC against held-out eval
// batches, plus the memory the TT compression saved.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/eff_tt_table.hpp"
#include "data/synthetic.hpp"
#include "dlrm/dlrm_model.hpp"
#include "dlrm/metrics.hpp"
#include "embed/embedding_bag.hpp"

using namespace elrec;

int main(int argc, char** argv) {
  const index_t num_batches = argc > 1 ? std::atoll(argv[1]) : 800;
  const index_t batch_size = argc > 2 ? std::atoll(argv[2]) : 256;

  // Criteo-Kaggle shape scaled 1000x so it trains in seconds on a CPU.
  const DatasetSpec spec = criteo_kaggle_spec().scaled(1000);
  std::printf("dataset: %s — %lld tables, %lld total rows\n",
              spec.name.c_str(), static_cast<long long>(spec.num_tables()),
              static_cast<long long>(spec.total_rows()));

  DlrmConfig cfg;
  cfg.num_dense = spec.num_dense;
  cfg.embedding_dim = 16;
  cfg.bottom_hidden = {64, 32};
  cfg.top_hidden = {64, 32};

  // Placement rule from the paper: compress the big tables, keep the tiny
  // ones dense.
  Prng rng(7);
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  std::size_t dense_bytes = 0;
  for (index_t rows : spec.table_rows) {
    dense_bytes += static_cast<std::size_t>(rows) * cfg.embedding_dim *
                   sizeof(float);
    if (rows >= 1000) {
      tables.push_back(std::make_unique<EffTTTable>(
          rows, TTShape::balanced(rows, cfg.embedding_dim, 3, 8), rng));
    } else {
      tables.push_back(
          std::make_unique<EmbeddingBag>(rows, cfg.embedding_dim, rng));
    }
  }
  DlrmModel model(cfg, std::move(tables), rng);
  std::printf("embedding params: %.2f MB compressed vs %.2f MB dense\n",
              model.embedding_bytes() / 1e6, dense_bytes / 1e6);

  SyntheticDataset data(spec, 2024);
  RunningMean window;
  for (index_t b = 1; b <= num_batches; ++b) {
    window.add(model.train_step(data.next_batch(batch_size), 0.15f));
    if (b % 50 == 0) {
      std::printf("batch %5lld  avg loss %.4f\n", static_cast<long long>(b),
                  window.mean());
      window.reset();
    }
  }

  std::vector<float> probs, all_probs, all_labels;
  for (std::uint64_t salt = 0; salt < 8; ++salt) {
    const MiniBatch eval = data.eval_batch(512, salt);
    model.predict(eval, probs);
    all_probs.insert(all_probs.end(), probs.begin(), probs.end());
    all_labels.insert(all_labels.end(), eval.labels.begin(),
                      eval.labels.end());
  }
  std::printf("\neval: accuracy %.2f%%, AUC %.3f over %zu samples\n",
              binary_accuracy(all_probs, all_labels) * 100,
              roc_auc(all_probs, all_labels), all_probs.size());
  return 0;
}
