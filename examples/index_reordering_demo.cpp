// Locality-based index reordering (paper §IV) end to end: build the index
// graph from training batches (Algorithm 2), detect communities (Louvain),
// install the bijection, and measure how much TT prefix sharing improves.
//
//   $ ./index_reordering_demo
#include <cstdio>

#include "core/eff_tt_table.hpp"
#include "data/synthetic.hpp"
#include "reorder/bijection.hpp"

using namespace elrec;

int main() {
  DatasetSpec spec;
  spec.name = "reorder-demo";
  spec.num_dense = 1;
  spec.table_rows = {20000};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.1;
  spec.hot_ratio = 0.005;
  spec.locality_groups = 16;
  spec.locality_fraction = 0.7;

  // Offline phase: harvest co-occurrence from training batches.
  SyntheticDataset data(spec, 31);
  ReorderPipeline pipeline(spec.table_rows[0], spec.hot_ratio, 7);
  for (int b = 0; b < 128; ++b) {
    pipeline.add_batch(data.next_batch(512).sparse[0].indices);
  }
  const BijectionResult bij = pipeline.finish();
  std::printf("index graph -> %lld communities, modularity %.3f, %lld hot "
              "indices pinned\n",
              static_cast<long long>(bij.num_communities), bij.modularity,
              static_cast<long long>(bij.num_hot));

  // Online phase: same table with and without the bijection.
  const TTShape shape = TTShape::balanced(spec.table_rows[0], 32, 3, 16);
  Prng rng(5);
  EffTTTable plain(spec.table_rows[0], shape, rng);
  EffTTTable reordered(spec.table_rows[0], shape, rng);
  reordered.set_index_bijection(bij.mapping);

  index_t plain_prefixes = 0, reordered_prefixes = 0, uniques = 0;
  Matrix out;
  for (int b = 0; b < 30; ++b) {
    const MiniBatch batch = data.next_batch(512);
    plain.forward(batch.sparse[0], out);
    plain_prefixes += plain.last_stats().unique_prefixes;
    uniques += plain.last_stats().unique_rows;
    reordered.forward(batch.sparse[0], out);
    reordered_prefixes += reordered.last_stats().unique_prefixes;
  }
  std::printf("\nover 30 batches of 512 (avg %.0f unique rows/batch):\n",
              static_cast<double>(uniques) / 30);
  std::printf("  unique prefix products/batch without reordering: %.1f\n",
              static_cast<double>(plain_prefixes) / 30);
  std::printf("  unique prefix products/batch with    reordering: %.1f\n",
              static_cast<double>(reordered_prefixes) / 30);
  std::printf("  -> %.2fx fewer stage-1 GEMMs (more intermediate reuse)\n",
              static_cast<double>(plain_prefixes) / reordered_prefixes);
  return 0;
}
