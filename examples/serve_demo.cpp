// End-to-end serving demo: train a small Eff-TT DLRM for a few hundred
// batches, checkpoint it, reload the checkpoint into a frozen
// InferenceSession, and serve a Zipf-skewed stream of single-user ranking
// requests through the micro-batching scheduler.
//
//   ./serve_demo            (~10s)
//
// Prints training loss, then serving p50/p95/p99 latency, throughput and
// cache hit rate.
#include <cstdio>
#include <filesystem>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/eff_tt_table.hpp"
#include "data/stats.hpp"
#include "data/synthetic.hpp"
#include "dlrm/model_checkpoint.hpp"
#include "serve/inference_session.hpp"
#include "serve/request_scheduler.hpp"

using namespace elrec;

namespace {

DatasetSpec demo_spec() {
  DatasetSpec spec;
  spec.name = "serve-demo";
  spec.num_dense = 13;
  spec.table_rows = {50000, 20000, 5000};
  spec.num_samples = 1 << 22;
  spec.zipf_s = 1.05;
  return spec;
}

std::unique_ptr<DlrmModel> make_model(const DatasetSpec& spec,
                                      std::uint64_t seed) {
  Prng rng(seed);
  DlrmConfig cfg;
  cfg.num_dense = spec.num_dense;
  cfg.embedding_dim = 16;
  cfg.bottom_hidden = {64, 32};
  cfg.top_hidden = {64, 32};
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  for (index_t rows : spec.table_rows) {
    tables.push_back(std::make_unique<EffTTTable>(
        rows, TTShape::balanced(rows, cfg.embedding_dim, 3, 16), rng));
  }
  return std::make_unique<DlrmModel>(cfg, std::move(tables), rng);
}

}  // namespace

int main() {
  const DatasetSpec spec = demo_spec();

  // --- Phase 1: brief training run. -------------------------------------
  std::printf("training a %lld-table Eff-TT DLRM...\n",
              static_cast<long long>(spec.table_rows.size()));
  auto model = make_model(spec, 1);
  SyntheticDataset data(spec, 2);
  float loss = 0.0f;
  for (int b = 0; b < 200; ++b) {
    loss = model->train_step(data.next_batch(128), 0.05f);
    if ((b + 1) % 50 == 0) {
      std::printf("  batch %3d  loss %.4f\n", b + 1, loss);
    }
  }

  // --- Phase 2: checkpoint, then reload into a frozen session. ----------
  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "elrec_serve_demo.ckpt")
          .string();
  save_dlrm_model(*model, ckpt);
  model.reset();  // the training model is gone; serving uses the checkpoint

  auto served_model = make_model(spec, 999);  // fresh (different) init
  load_dlrm_model(*served_model, ckpt);
  std::remove(ckpt.c_str());

  InferenceSessionConfig scfg;
  scfg.cache.capacity = 4096;
  scfg.cache.admit_min_freq = 2;
  InferenceSession session(std::move(served_model), scfg);

  // Seed each table's cache with its measured hot set (RecShard-style).
  SyntheticDataset stats_data(spec, 3);
  for (index_t t = 0; t < session.num_tables(); ++t) {
    session.warm_cache(t, top_accessed_indices(stats_data, t, /*k=*/4096,
                                               /*num_draws=*/50000));
  }
  std::printf("checkpoint reloaded; caches warmed\n");

  // --- Phase 3: serve a Zipf request stream. ----------------------------
  RequestSchedulerConfig rcfg;
  rcfg.num_workers = 4;
  rcfg.max_batch = 32;
  rcfg.max_wait_us = 100;
  rcfg.queue_capacity = 512;
  RequestScheduler sched(session, rcfg);

  const std::size_t kRequests = 20000;
  Prng rng(4);
  std::vector<std::future<RankingResponse>> futs;
  futs.reserve(kRequests);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < kRequests; ++r) {
    RankingRequest req;
    req.dense.resize(static_cast<std::size_t>(spec.num_dense));
    for (auto& v : req.dense) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    req.sparse.resize(static_cast<std::size_t>(session.num_tables()));
    for (index_t t = 0; t < session.num_tables(); ++t) {
      req.sparse[static_cast<std::size_t>(t)].push_back(
          stats_data.sampler(t).sample(rng));
    }
    std::future<RankingResponse> fut;
    while (sched.submit(req, fut) != SubmitStatus::kAccepted) {
      std::this_thread::yield();  // shed at the bound: back off and retry
    }
    futs.push_back(std::move(fut));
  }
  for (auto& f : futs) (void)f.get();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  sched.shutdown();

  const LatencySummary total = sched.latency().total_summary();
  const LatencySummary queue = sched.latency().queue_summary();
  const LatencySummary compute = sched.latency().compute_summary();
  const auto stats = sched.stats();
  std::printf("\nserved %zu requests in %.2fs (%.0f req/s)\n", stats.served,
              wall_s, static_cast<double>(kRequests) / wall_s);
  std::printf("latency  p50 %.1f us   p95 %.1f us   p99 %.1f us\n", total.p50,
              total.p95, total.p99);
  std::printf("  queue  p50 %.1f us   compute p50 %.1f us\n", queue.p50,
              compute.p50);
  std::printf("micro-batches: %zu (largest %lld)   shed: %zu\n",
              stats.batches, static_cast<long long>(stats.largest_batch),
              stats.shed);
  std::printf("cache hit rate: %.3f\n", session.cache_hit_rate());
  return 0;
}
