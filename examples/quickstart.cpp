// Quickstart: the Eff-TT table as a drop-in compressed embedding table.
//
//   $ ./quickstart
//
// Walks through the core API: build a compressed table for a 1M-row
// vocabulary, look up batches, apply gradients (SGD is fused into the
// backward), and inspect footprint + reuse statistics.
#include <cstdio>

#include "core/eff_tt_table.hpp"
#include "embed/embedding_bag.hpp"

using namespace elrec;

int main() {
  const index_t vocab = 1000000;  // 1M rows
  const index_t dim = 64;

  // 1. Choose a TT shape: 3 cores, balanced row factors covering the vocab,
  //    internal rank 32. The same call an nn.EmbeddingBag user would make,
  //    plus the shape.
  const TTShape shape = TTShape::balanced(vocab, dim, 3, /*rank=*/32);
  std::printf("TT shape: rows %lld x %lld x %lld (padded %lld), dim %lld,\n",
              static_cast<long long>(shape.row_factor(0)),
              static_cast<long long>(shape.row_factor(1)),
              static_cast<long long>(shape.row_factor(2)),
              static_cast<long long>(shape.padded_rows()),
              static_cast<long long>(shape.dim()));
  std::printf("parameters: %zu floats (dense table: %lld) -> %.0fx smaller\n",
              shape.parameter_count(),
              static_cast<long long>(vocab) * dim,
              shape.compression_ratio(vocab));

  Prng rng(42);
  EffTTTable table(vocab, shape, rng);

  // 2. Forward: sum-pooled lookup with the (indices, offsets) convention of
  //    torch.nn.EmbeddingBag. Three bags: {7}, {123456, 7}, {999999}.
  const IndexBatch batch = IndexBatch::from_bags({{7}, {123456, 7}, {999999}});
  Matrix pooled;
  table.forward(batch, pooled);
  std::printf("\nlookup of 3 bags -> %lld x %lld pooled embeddings\n",
              static_cast<long long>(pooled.rows()),
              static_cast<long long>(pooled.cols()));

  const auto& stats = table.last_stats();
  std::printf("reuse stats: %lld indices, %lld unique rows, %lld unique "
              "prefix products\n",
              static_cast<long long>(stats.total_indices),
              static_cast<long long>(stats.unique_rows),
              static_cast<long long>(stats.unique_prefixes));

  // 3. Backward: hand the pooled-embedding gradients back; the TT cores are
  //    updated in place (fused SGD, in-advance aggregation).
  Matrix grad(batch.batch_size(), dim);
  grad.fill(0.01f);
  table.backward_and_update(batch, grad, /*lr=*/0.1f);
  std::printf("\nbackward_and_update applied (lr=0.1)\n");

  // 4. The same model code runs against any IEmbeddingTable — swapping in a
  //    dense table is one line:
  EmbeddingBag dense(1000, dim, rng);
  IEmbeddingTable* generic = &dense;
  Matrix out;
  generic->forward(IndexBatch::one_per_sample({1, 2, 3}), out);
  std::printf("dense drop-in produced %lld x %lld (API identical)\n",
              static_cast<long long>(out.rows()),
              static_cast<long long>(out.cols()));
  std::printf("\nquickstart done.\n");
  return 0;
}
