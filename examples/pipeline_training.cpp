// The full EL-Rec system (paper Fig. 9): Eff-TT tables on the worker, an
// oversized table in host memory behind prefetch/gradient queues, and the
// embedding cache repairing the pipeline's read-after-write hazard.
//
//   $ ./pipeline_training [num_batches] [queue_depth]
//
// Runs the same workload sequentially (queue depth 1) and pipelined and
// shows that the loss trajectories are identical — the cache makes the
// pipeline semantically invisible.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "pipeline/elrec_trainer.hpp"

using namespace elrec;

int main(int argc, char** argv) {
  const index_t num_batches = argc > 1 ? std::atoll(argv[1]) : 150;
  const index_t depth = argc > 2 ? std::atoll(argv[2]) : 4;

  DatasetSpec spec;
  spec.name = "pipeline-demo";
  spec.num_dense = 4;
  spec.table_rows = {30000, 5000, 512};  // host / device-TT / device-dense
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.15;

  ElRecTrainerConfig cfg;
  cfg.model.num_dense = spec.num_dense;
  cfg.model.embedding_dim = 16;
  cfg.model.bottom_hidden = {32};
  cfg.model.top_hidden = {32};
  cfg.placement = {TablePlacement::kHost, TablePlacement::kDeviceTT,
                   TablePlacement::kDeviceDense};
  cfg.tt_rank = 8;
  cfg.lr = 0.05f;
  cfg.seed = 11;

  ElRecRunStats runs[2];
  const index_t depths[2] = {1, depth};
  for (int mode = 0; mode < 2; ++mode) {
    cfg.queue_capacity = depths[mode];
    ElRecTrainer trainer(cfg, spec);
    SyntheticDataset data(spec, 99);
    runs[mode] = trainer.train(data, num_batches, 256);
    std::printf(
        "%-22s batches=%lld  final_loss=%.4f  rows_patched=%lld  "
        "cache_peak=%zu  wall=%.2fs\n",
        mode == 0 ? "sequential (depth 1):" : "pipelined:",
        static_cast<long long>(runs[mode].batches), runs[mode].final_loss,
        static_cast<long long>(runs[mode].rows_patched),
        runs[mode].cache_peak, runs[mode].wall_seconds);
  }

  double max_diff = 0.0;
  for (std::size_t i = 0; i < runs[0].loss_curve.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(static_cast<double>(runs[0].loss_curve[i]) -
                                  runs[1].loss_curve[i]));
  }
  std::printf("\nmax per-batch loss difference (RAW-conflict check): %.2e\n",
              max_diff);
  std::printf("the embedding cache patched %lld stale prefetched rows while\n"
              "keeping the pipelined run numerically identical.\n",
              static_cast<long long>(runs[1].rows_patched));
  return 0;
}
