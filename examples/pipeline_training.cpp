// The full EL-Rec system (paper Fig. 9): Eff-TT tables on the worker, an
// oversized table in host memory behind prefetch/gradient queues, and the
// embedding cache repairing the pipeline's read-after-write hazard.
//
//   $ ./pipeline_training [num_batches] [queue_depth] [--codec=dual|none]
//
// Runs the same workload sequentially (queue depth 1) and pipelined and
// shows that the loss trajectories are identical — the cache makes the
// pipeline semantically invisible. With --codec=dual the queue traffic is
// compressed by the error-bounded dual-level codec and the example also
// reports the bytes-on-queue reduction and the (bounded) loss drift.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "pipeline/elrec_trainer.hpp"

using namespace elrec;

int main(int argc, char** argv) {
  index_t num_batches = 150;
  index_t depth = 4;
  CodecConfig codec;  // default: null codec, bitwise-identical queues
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--codec=dual") == 0) {
      codec.id = CodecId::kDualLevel;
    } else if (std::strcmp(argv[i], "--codec=none") == 0) {
      codec.id = CodecId::kNull;
    } else if (std::strncmp(argv[i], "--codec=", 8) == 0) {
      std::fprintf(stderr, "unknown codec '%s' (use dual or none)\n",
                   argv[i] + 8);
      return 1;
    } else if (positional == 0) {
      num_batches = std::atoll(argv[i]);
      ++positional;
    } else {
      depth = std::atoll(argv[i]);
      ++positional;
    }
  }

  DatasetSpec spec;
  spec.name = "pipeline-demo";
  spec.num_dense = 4;
  spec.table_rows = {30000, 5000, 512};  // host / device-TT / device-dense
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.15;

  ElRecTrainerConfig cfg;
  cfg.model.num_dense = spec.num_dense;
  cfg.model.embedding_dim = 16;
  cfg.model.bottom_hidden = {32};
  cfg.model.top_hidden = {32};
  cfg.placement = {TablePlacement::kHost, TablePlacement::kDeviceTT,
                   TablePlacement::kDeviceDense};
  cfg.tt_rank = 8;
  cfg.lr = 0.05f;
  cfg.seed = 11;
  cfg.codec = codec;

  ElRecRunStats runs[2];
  const index_t depths[2] = {1, depth};
  for (int mode = 0; mode < 2; ++mode) {
    cfg.queue_capacity = depths[mode];
    ElRecTrainer trainer(cfg, spec);
    SyntheticDataset data(spec, 99);
    runs[mode] = trainer.train(data, num_batches, 256);
    std::printf(
        "%-22s batches=%lld  final_loss=%.4f  rows_patched=%lld  "
        "cache_peak=%zu  wall=%.2fs\n",
        mode == 0 ? "sequential (depth 1):" : "pipelined:",
        static_cast<long long>(runs[mode].batches), runs[mode].final_loss,
        static_cast<long long>(runs[mode].rows_patched),
        runs[mode].cache_peak, runs[mode].wall_seconds);
  }

  double max_diff = 0.0;
  for (std::size_t i = 0; i < runs[0].loss_curve.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(static_cast<double>(runs[0].loss_curve[i]) -
                                  runs[1].loss_curve[i]));
  }
  std::printf("\nmax per-batch loss difference (RAW-conflict check): %.2e\n",
              max_diff);
  std::printf("the embedding cache patched %lld stale prefetched rows while\n"
              "keeping the pipelined run numerically identical.\n",
              static_cast<long long>(runs[1].rows_patched));
  if (!codec.lossless() && runs[1].encoded_queue_bytes > 0) {
    std::printf(
        "\ncodec: dual-level int%d (rel_bound %.2f) cut queue bytes %.2fx "
        "(%.1f KB -> %.1f KB)\n",
        codec.bits, codec.rel_bound,
        static_cast<double>(runs[1].raw_queue_bytes) /
            static_cast<double>(runs[1].encoded_queue_bytes),
        runs[1].raw_queue_bytes / 1024.0,
        runs[1].encoded_queue_bytes / 1024.0);
  }
  return 0;
}
