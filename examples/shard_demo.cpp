// Fault-tolerant sharded serving demo: train a small Eff-TT DLRM,
// checkpoint it, restore one copy per shard (TT compression makes the full
// model per node cheap), build a 3-shard tier with replication-2 placement
// behind the failover router, serve a Zipf stream, kill a shard mid-load,
// and let the health ping bring the revived shard back into rotation.
//
//   ./shard_demo            (~10s, 20k requests, kill + revive drill)
//   ./shard_demo --smoke    tiny run for scripts/check.sh --shard
//                           (3 shards, 5k requests, one injected kill)
//
// Fault sites can also be armed without recompiling, e.g.
//   ELREC_FAULT_SITES='shard.serve:0.01:transient' ./shard_demo --smoke
// to sprinkle retryable faults over the stream.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/fault_injector.hpp"
#include "core/eff_tt_table.hpp"
#include "data/stats.hpp"
#include "data/synthetic.hpp"
#include "dlrm/model_checkpoint.hpp"
#include "serve/inference_session.hpp"
#include "serve/request_scheduler.hpp"
#include "shard/placement.hpp"
#include "shard/shard_router.hpp"

using namespace elrec;

namespace {

DatasetSpec demo_spec(bool smoke) {
  DatasetSpec spec;
  spec.name = "shard-demo";
  spec.num_dense = 13;
  spec.table_rows = smoke ? std::vector<index_t>{20000, 8000}
                          : std::vector<index_t>{50000, 20000, 5000};
  spec.num_samples = 1 << 22;
  spec.zipf_s = 1.05;
  return spec;
}

std::unique_ptr<DlrmModel> make_model(const DatasetSpec& spec,
                                      std::uint64_t seed) {
  Prng rng(seed);
  DlrmConfig cfg;
  cfg.num_dense = spec.num_dense;
  cfg.embedding_dim = 16;
  cfg.bottom_hidden = {64, 32};
  cfg.top_hidden = {64, 32};
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  for (index_t rows : spec.table_rows) {
    tables.push_back(std::make_unique<EffTTTable>(
        rows, TTShape::balanced(rows, cfg.embedding_dim, 3, 16), rng));
  }
  return std::make_unique<DlrmModel>(cfg, std::move(tables), rng);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const DatasetSpec spec = demo_spec(smoke);
  constexpr int kShards = 3;

  // --- Phase 1: train briefly and checkpoint. ----------------------------
  std::printf("training a %lld-table Eff-TT DLRM...\n",
              static_cast<long long>(spec.table_rows.size()));
  auto model = make_model(spec, 1);
  SyntheticDataset data(spec, 2);
  const int train_batches = smoke ? 40 : 200;
  float loss = 0.0f;
  for (int b = 0; b < train_batches; ++b) {
    loss = model->train_step(data.next_batch(128), 0.05f);
  }
  std::printf("  final loss %.4f\n", loss);

  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "elrec_shard_demo.ckpt")
          .string();
  save_dlrm_model(*model, ckpt);
  model.reset();

  // --- Phase 2: restore one full model per shard + router fallback. ------
  InferenceSessionConfig scfg;
  scfg.cache.capacity = 4096;
  scfg.cache.admit_min_freq = 2;
  auto restore_session = [&](std::uint64_t seed) {
    auto m = make_model(spec, seed);  // fresh init, overwritten by restore
    load_dlrm_model(*m, ckpt);
    return std::make_unique<InferenceSession>(std::move(m), scfg);
  };
  std::vector<std::unique_ptr<InferenceSession>> sessions;
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<ShardServer*> raw;
  for (int s = 0; s < kShards; ++s) {
    sessions.push_back(restore_session(100 + static_cast<std::uint64_t>(s)));
    servers.push_back(std::make_unique<ShardServer>(s, *sessions.back()));
    raw.push_back(servers.back().get());
  }
  auto fallback = restore_session(999);
  std::remove(ckpt.c_str());

  ShardRouterConfig rcfg;
  rcfg.replication = 2;
  rcfg.ping_interval = std::chrono::milliseconds(5);
  ShardRouter router(*fallback, raw, rcfg);

  // Statistics-driven placement: each shard warms its owned hot partition
  // (primary + replica copies), RecShard-style.
  SyntheticDataset stats_data(spec, 3);
  std::vector<std::vector<index_t>> hot;
  for (index_t t = 0; t < router.num_tables(); ++t) {
    hot.push_back(
        top_accessed_indices(stats_data, t, /*k=*/4096, /*num_draws=*/50000));
  }
  PlacementConfig pcfg;
  pcfg.replication = rcfg.replication;
  const PlacementPlan plan = plan_placement(router.ring(), hot, pcfg);
  for (int s = 0; s < kShards; ++s) {
    for (std::size_t t = 0; t < hot.size(); ++t) {
      sessions[static_cast<std::size_t>(s)]->warm_cache(
          static_cast<index_t>(t),
          plan.warm_rows[static_cast<std::size_t>(s)][t]);
    }
    std::printf("shard %d: hot-traffic share %.2f\n", s,
                plan.shard_share[static_cast<std::size_t>(s)]);
  }

  // --- Phase 3: serve; kill a shard mid-stream; revive it. ---------------
  RequestSchedulerConfig qcfg;
  qcfg.num_workers = 4;
  qcfg.max_batch = 32;
  qcfg.max_wait_us = 100;
  qcfg.queue_capacity = 512;
  RequestScheduler sched(router, qcfg);

  const std::size_t kRequests = smoke ? 5000 : 20000;
  const std::size_t kill_at = kRequests / 2;
  const int victim = 1;
  Prng rng(4);
  std::vector<std::future<RankingResponse>> futs;
  futs.reserve(kRequests);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < kRequests; ++r) {
    if (r == kill_at) {
      std::printf("killing shard %d mid-load...\n", victim);
      servers[static_cast<std::size_t>(victim)]->kill();
    }
    RankingRequest req;
    req.dense.resize(static_cast<std::size_t>(spec.num_dense));
    for (auto& v : req.dense) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    req.sparse.resize(static_cast<std::size_t>(router.num_tables()));
    for (index_t t = 0; t < router.num_tables(); ++t) {
      req.sparse[static_cast<std::size_t>(t)].push_back(
          stats_data.sampler(t).sample(rng));
    }
    std::future<RankingResponse> fut;
    while (sched.submit(req, fut) != SubmitStatus::kAccepted) {
      std::this_thread::yield();
    }
    futs.push_back(std::move(fut));
  }
  for (auto& f : futs) (void)f.get();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  sched.shutdown();

  const LatencySummary total = sched.latency().total_summary();
  const auto qstats = sched.stats();
  const ShardRouter::RouterStats rs = router.stats();
  std::printf("\nserved %zu requests in %.2fs (%.0f req/s)\n", qstats.served,
              wall_s, static_cast<double>(qstats.served) / wall_s);
  std::printf("latency p50 %.0fus  p95 %.0fus  p99 %.0fus\n", total.p50,
              total.p95, total.p99);
  std::printf("router: %llu scatter calls, %llu retries, %llu failovers, "
              "%llu fallback rows, %llu shed\n",
              static_cast<unsigned long long>(rs.scatter_calls),
              static_cast<unsigned long long>(rs.retries),
              static_cast<unsigned long long>(rs.failovers),
              static_cast<unsigned long long>(rs.fallback_rows),
              static_cast<unsigned long long>(rs.shed));
  std::printf("health: %llu markdowns, %llu markups; shard %d live: %s\n",
              static_cast<unsigned long long>(rs.markdowns),
              static_cast<unsigned long long>(rs.markups), victim,
              router.shard_live(victim) ? "yes" : "no");
  if (qstats.accepted != qstats.served) {
    std::printf("FAIL: %zu accepted requests were lost\n",
                qstats.accepted - qstats.served);
    return 1;
  }

  // --- Phase 4: revive; the health ping readmits the shard. --------------
  servers[static_cast<std::size_t>(victim)]->revive();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!router.shard_live(victim) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::printf("revived shard %d; router sees it %s\n", victim,
              router.shard_live(victim) ? "live (rejoined)" : "STILL DOWN");
  if (!router.shard_live(victim)) return 1;

  const std::string env_err = FaultInjector::instance().env_config_error();
  if (!env_err.empty()) {
    std::printf("warning: ELREC_FAULT_SITES parse error: %s\n",
                env_err.c_str());
  }
  std::printf("zero accepted-request loss through kill + revive. done.\n");
  return 0;
}
